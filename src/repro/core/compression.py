"""Checkpoint compression for remote transfers (extension).

The related work cites mcrengine (Islam et al., SC'12): compressing
checkpoint data before it leaves the node trades helper CPU for
interconnect volume.  This module adds that trade to the remote path:

* for **real-payload** chunks the model measures the *actual*
  compressibility (zlib level 1 — an LZ-class fast codec stand-in),
  cached per committed version so repeated sends don't recompress;
* for **phantom** chunks a configured ratio applies (HPC checkpoint
  studies report ~1.2-2x for double-precision state);
* compression/decompression CPU time is charged at LZ-class
  throughputs to the sending helper and the receiving buddy.

Wire format bookkeeping only — payloads are stored decompressed on the
buddy, exactly as the replication protocol expects.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..alloc.chunk import Chunk

__all__ = ["CompressionModel"]


@dataclass
class CompressionModel:
    """Compressibility + CPU-cost model for checkpoint payloads."""

    #: assumed compressed/original ratio for phantom (size-only) chunks
    phantom_ratio: float = 0.6
    #: compression throughput (LZ-class fast codec), bytes/second
    compress_rate: float = 1.5e9
    #: decompression throughput, bytes/second
    decompress_rate: float = 4.0e9
    #: measured-ratio cache: (chunk_id, total_mods) -> ratio
    _cache: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: accounting
    bytes_in: int = 0
    bytes_out: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.phantom_ratio <= 1.0:
            raise ValueError("phantom_ratio must be in (0, 1]")
        if self.compress_rate <= 0 or self.decompress_rate <= 0:
            raise ValueError("codec rates must be positive")

    # ------------------------------------------------------------------
    # Ratios.
    # ------------------------------------------------------------------

    def ratio_for(self, chunk: Chunk) -> float:
        """Compressed/original ratio for the chunk's current payload."""
        if chunk.phantom or chunk.dram is None:
            return self.phantom_ratio
        key = (chunk.chunk_id, chunk.total_mods)
        cached = self._cache.get(key)
        if cached is None:
            compressed = zlib.compress(chunk.dram.tobytes(), level=1)
            cached = min(1.0, len(compressed) / max(1, chunk.nbytes))
            self._cache[key] = cached
            # keep the cache bounded: one live entry per chunk
            stale = [k for k in self._cache if k[0] == chunk.chunk_id and k != key]
            for k in stale:
                del self._cache[k]
        return cached

    def wire_bytes(self, chunk: Chunk) -> int:
        """Bytes that actually cross the fabric for *chunk*."""
        wire = max(1, int(chunk.nbytes * self.ratio_for(chunk)))
        self.bytes_in += chunk.nbytes
        self.bytes_out += wire
        return wire

    # ------------------------------------------------------------------
    # CPU costs.
    # ------------------------------------------------------------------

    def compress_cost(self, nbytes: int) -> float:
        """Sender-side CPU seconds to compress *nbytes*."""
        return nbytes / self.compress_rate

    def decompress_cost(self, nbytes: int) -> float:
        """Receiver-side CPU seconds to decompress back to *nbytes*."""
        return nbytes / self.decompress_rate

    # ------------------------------------------------------------------
    # Aggregates.
    # ------------------------------------------------------------------

    @property
    def achieved_ratio(self) -> float:
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_out / self.bytes_in
