"""Checkpoint compression for remote transfers (extension).

The related work cites mcrengine (Islam et al., SC'12): compressing
checkpoint data before it leaves the node trades helper CPU for
interconnect volume.  This module adds that trade to the remote path:

* for **real-payload** chunks the model measures the *actual*
  compressibility through the codec layer's shared
  :class:`~repro.core.codec.EntropyProbe` (zlib level 1 over a bounded
  sample — an LZ-class fast codec stand-in), cached per chunk
  **incarnation**: the old ``(chunk_id, total_mods)`` cache could hand
  a freed-and-reallocated chunk (or one restored/migrated at restart)
  the ratio measured on a *different* buffer that happened to share its
  id and mod count;
* for **phantom** chunks a configured ratio applies (HPC checkpoint
  studies report ~1.2-2x for double-precision state);
* compression/decompression CPU time is charged at LZ-class
  throughputs to the sending helper and the receiving buddy.

Wire format bookkeeping only — payloads are stored decompressed on the
buddy, exactly as the replication protocol expects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..alloc.chunk import Chunk
from .codec import EntropyProbe

__all__ = ["CompressionModel"]


@dataclass
class CompressionModel:
    """Compressibility + CPU-cost model for checkpoint payloads."""

    #: assumed compressed/original ratio for phantom (size-only) chunks
    phantom_ratio: float = 0.6
    #: compression throughput (LZ-class fast codec), bytes/second
    compress_rate: float = 1.5e9
    #: decompression throughput, bytes/second
    decompress_rate: float = 4.0e9
    #: measurement backend; pass the codec layer's probe to share its
    #: cache, or leave ``None`` for a private one
    probe: Optional[EntropyProbe] = None
    #: accounting
    bytes_in: int = 0
    bytes_out: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.phantom_ratio <= 1.0:
            raise ValueError("phantom_ratio must be in (0, 1]")
        if self.compress_rate <= 0 or self.decompress_rate <= 0:
            raise ValueError("codec rates must be positive")
        if self.probe is None:
            self.probe = EntropyProbe(default_ratio=self.phantom_ratio)

    @property
    def _cache(self):
        """The probe's ratio cache (one live entry per chunk id)."""
        return self.probe._cache

    # ------------------------------------------------------------------
    # Ratios.
    # ------------------------------------------------------------------

    def ratio_for(self, chunk: Chunk) -> float:
        """Compressed/original ratio for the chunk's current payload.

        Measured ratios are cached keyed by ``(incarnation,
        total_mods)``, so a ratio can never outlive the buffer it was
        measured on (free/realloc, restore-from-committed and lazy
        restart migration all bump the incarnation)."""
        if chunk.phantom or chunk.dram is None:
            return self.phantom_ratio
        return self.probe.ratio_for(chunk)

    def wire_bytes(self, chunk: Chunk) -> int:
        """Bytes that actually cross the fabric for *chunk*."""
        wire = max(1, int(chunk.nbytes * self.ratio_for(chunk)))
        self.bytes_in += chunk.nbytes
        self.bytes_out += wire
        return wire

    # ------------------------------------------------------------------
    # CPU costs.
    # ------------------------------------------------------------------

    def compress_cost(self, nbytes: int) -> float:
        """Sender-side CPU seconds to compress *nbytes*."""
        return nbytes / self.compress_rate

    def decompress_cost(self, nbytes: int) -> float:
        """Receiver-side CPU seconds to decompress back to *nbytes*."""
        return nbytes / self.decompress_rate

    # ------------------------------------------------------------------
    # Aggregates.
    # ------------------------------------------------------------------

    @property
    def achieved_ratio(self) -> float:
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_out / self.bytes_in
