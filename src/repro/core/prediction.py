"""DCPCP: delayed pre-copy with prediction (§IV, Figure 6).

Some chunks ("hot chunks" — e.g. Lammps' 3-D result array) are
modified until the very end of a compute iteration; pre-copying them
early just wastes NVM bandwidth on repeated copies.  The paper's fix is
a **prediction table**: during a learning interval (the first
checkpoint interval) the runtime counts how many times each chunk is
modified and records the *order* of modifications as a small state
machine.  In later intervals a dirty chunk is withheld from pre-copy
until its remaining-modification counter reaches zero; a wrong
prediction is harmless — the chunk is simply copied during the
coordinated checkpoint (correctness never depends on the predictor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..alloc.chunk import Chunk

__all__ = ["PredictionTable", "ModificationStateMachine"]


class ModificationStateMachine:
    """The chunk-modification-order state machine of Figure 6.

    States are chunk ids; a transition ``a -> b`` is recorded whenever a
    modification of chunk *b* directly follows one of chunk *a* within
    an interval.  Counts accumulate over learning intervals; the
    machine exposes the most likely successor of each chunk and a DOT
    rendering for reports.
    """

    def __init__(self) -> None:
        #: transition counts: (from_chunk, to_chunk) -> count
        self.transitions: Dict[Tuple[int, int], int] = {}
        self._last: Optional[int] = None

    def observe(self, chunk_id: int) -> None:
        """Record one modification event (in arrival order)."""
        if self._last is not None:
            key = (self._last, chunk_id)
            self.transitions[key] = self.transitions.get(key, 0) + 1
        self._last = chunk_id

    def reset_position(self) -> None:
        """Interval boundary: the next observation starts a new walk."""
        self._last = None

    def successors(self, chunk_id: int) -> List[Tuple[int, int]]:
        """``(next_chunk, count)`` pairs sorted by decreasing count."""
        out = [(b, n) for (a, b), n in self.transitions.items() if a == chunk_id]
        out.sort(key=lambda t: (-t[1], t[0]))
        return out

    def predict_next(self, chunk_id: int) -> Optional[int]:
        succ = self.successors(chunk_id)
        return succ[0][0] if succ else None

    def to_dot(self, names: Optional[Dict[int, str]] = None) -> str:
        """Graphviz rendering (Fig. 6 reproduction)."""
        lines = ["digraph chunk_modifications {"]
        for (a, b), n in sorted(self.transitions.items()):
            la = names.get(a, str(a)) if names else str(a)
            lb = names.get(b, str(b)) if names else str(b)
            lines.append(f'  "{la}" -> "{lb}" [label="{n}"];')
        lines.append("}")
        return "\n".join(lines)


@dataclass
class _ChunkPrediction:
    """Learned per-chunk modification behaviour."""

    expected_mods: float = 0.0
    intervals_seen: int = 0
    hits: int = 0
    misses: int = 0


class PredictionTable:
    """Per-chunk modification counters + the order state machine.

    Lifecycle per checkpoint interval:

    1. ``begin_interval()`` at the start of each compute phase;
    2. ``observe(chunk)`` for every dirtying write (wired to the
       chunk's ``on_dirty`` observers by the pre-copy engine);
    3. ``eligible(chunk)`` consulted by DCPCP before pre-copying;
    4. ``end_interval()`` at the coordinated checkpoint — updates the
       learned counts (exponentially smoothed so the predictor adapts
       'to deal with application changes across iterations').
    """

    def __init__(self, smoothing: float = 0.5) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.smoothing = smoothing
        self.table: Dict[int, _ChunkPrediction] = {}
        self.machine = ModificationStateMachine()
        self._interval_mods: Dict[int, int] = {}
        self.intervals_completed = 0

    # -- interval lifecycle -------------------------------------------------

    def begin_interval(self) -> None:
        self._interval_mods.clear()
        self.machine.reset_position()

    def observe(self, chunk: Chunk) -> None:
        cid = chunk.chunk_id
        self._interval_mods[cid] = self._interval_mods.get(cid, 0) + 1
        self.machine.observe(cid)

    def end_interval(self) -> None:
        """Fold this interval's counts into the learned expectations."""
        for cid, count in self._interval_mods.items():
            pred = self.table.setdefault(cid, _ChunkPrediction())
            if pred.intervals_seen == 0:
                pred.expected_mods = float(count)
            else:
                s = self.smoothing
                pred.expected_mods = s * count + (1.0 - s) * pred.expected_mods
            pred.intervals_seen += 1
        self.intervals_completed += 1
        self._interval_mods.clear()
        self.machine.reset_position()

    # -- queries ---------------------------------------------------------------

    @property
    def learning(self) -> bool:
        """True during the first interval (no predictions yet)."""
        return self.intervals_completed == 0

    def expected_mods(self, chunk: Chunk) -> float:
        pred = self.table.get(chunk.chunk_id)
        return pred.expected_mods if pred else 0.0

    def mods_so_far(self, chunk: Chunk) -> int:
        return self._interval_mods.get(chunk.chunk_id, 0)

    def remaining_mods(self, chunk: Chunk) -> float:
        """Predicted modifications still to come this interval; the
        chunk is worth pre-copying once this reaches zero."""
        return max(0.0, self.expected_mods(chunk) - self.mods_so_far(chunk))

    def eligible(self, chunk: Chunk) -> bool:
        """DCPCP eligibility: pre-copy only when the chunk is not
        expected to be written again this interval.  During the
        learning interval nothing is predicted, so everything is
        eligible (plain delayed pre-copy behaviour)."""
        if self.learning:
            return True
        return self.remaining_mods(chunk) <= 0.0

    def record_outcome(self, chunk: Chunk, was_redundant: bool) -> None:
        """Accuracy accounting: a pre-copy was *redundant* if the chunk
        was dirtied again before the coordinated checkpoint."""
        pred = self.table.setdefault(chunk.chunk_id, _ChunkPrediction())
        if was_redundant:
            pred.misses += 1
        else:
            pred.hits += 1

    def accuracy(self) -> float:
        hits = sum(p.hits for p in self.table.values())
        total = hits + sum(p.misses for p in self.table.values())
        return hits / total if total else 1.0

    def snapshot(self) -> Dict[int, float]:
        """Chunk id -> expected modification count (for reports)."""
        return {cid: p.expected_mods for cid, p in self.table.items()}
