"""Trace sources: one loader for every way a trace reaches the replay
engine.

Accepted inputs:

* a Jsonl path or open text stream written by
  :class:`~repro.metrics.trace.JsonlSink` (schema-checked via
  :func:`~repro.metrics.trace.read_trace`);
* a live :class:`~repro.metrics.trace.RingBufferSink` (in-memory
  capture, e.g. from :func:`~repro.replay.capture.capture_cell`);
* a plain iterable of :class:`~repro.metrics.trace.TraceEvent`;
* an existing :class:`TraceSource` (pass-through).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import ConfigError
from ..metrics.trace import RingBufferSink, TraceEvent, read_trace

__all__ = ["TraceSource", "load_source"]


@dataclass
class TraceSource:
    """A loaded trace: metadata plus the chronological event stream."""

    events: List[TraceEvent] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]


def load_source(source, *, meta: Optional[Dict[str, Any]] = None) -> TraceSource:
    """Normalize *source* into a :class:`TraceSource`.

    An explicit *meta* overrides whatever the source carries (events
    captured in memory have no header of their own).
    """
    if isinstance(source, TraceSource):
        return TraceSource(
            events=list(source.events),
            meta=dict(meta) if meta is not None else dict(source.meta),
        )
    if isinstance(source, RingBufferSink):
        return TraceSource(events=list(source.events), meta=dict(meta or {}))
    if isinstance(source, str) or isinstance(source, io.TextIOBase):
        read_meta, events = read_trace(source)
        return TraceSource(
            events=events, meta=dict(meta) if meta is not None else dict(read_meta)
        )
    if hasattr(source, "read") and hasattr(source, "readline"):
        read_meta, events = read_trace(source)
        return TraceSource(
            events=events, meta=dict(meta) if meta is not None else dict(read_meta)
        )
    try:
        events = list(source)
    except TypeError:
        raise ConfigError(
            f"cannot load a trace from {type(source).__name__!r}; expected "
            "a Jsonl path/stream, a RingBufferSink, or an event iterable"
        ) from None
    for ev in events:
        if not isinstance(ev, TraceEvent):
            raise ConfigError(
                f"trace event list contains a non-event {type(ev).__name__!r}"
            )
    return TraceSource(events=events, meta=dict(meta or {}))
