"""What-if replay: re-run a reconstructed schedule under a different
policy, copy granularity, bandwidth or threshold margin.

This is the *model* path — distinct from the faithful path, which is
exact by construction for the captured config.  The what-if runner
re-decides every chunk's fate per interval from the reconstructed
write epochs, using the same building blocks the live pipeline uses:

* the real :class:`~repro.core.threshold.ThresholdEstimator` (not a
  re-implementation) learns interval/data-size exactly as DCPC does,
  fed the reconstructed compute windows;
* DCPCP's hot-chunk withholding is an EMA over observed re-dirties,
  mirroring the prediction table's eligibility semantics;
* copy costs come from the trace's *observed* bandwidth (bytes over
  span seconds), scaled for bandwidth what-ifs.

What the model cannot know, it reports: replaying at page granularity
from a chunk-granular capture has no extent data (per-epoch moved
bytes fall back to the observed copies), and chunks a skipping policy
never copied have unknown sizes — the ``coverage`` field quantifies
how much of the catalog the trace actually sized.

The **codec axis** asks "what would delta/dedup have saved" of a raw
capture.  A raw trace carries no content, so the model uses the live
codec layer's wire arithmetic (per-block digest/header metadata, same
constants) driven by a *novelty* parameter — the fraction of a
re-shipped payload whose bytes genuinely changed, exactly the knob the
phantom content model uses live.  The first shipment of a chunk has no
base: every block is new, delta degenerates to full.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.codec import (
    DEFAULT_BLOCK,
    DEFAULT_NOVELTY,
    DELTA_HEADER_BYTES,
    DIGEST_META_BYTES,
    codec_names,
)
from ..core.threshold import ThresholdEstimator
from ..errors import ConfigError
from .reconstruct import (
    ChunkActivity,
    IntervalRecord,
    RankWorkload,
    Workload,
    _logical,
)

__all__ = ["CodecEstimator", "WhatIfResult", "run_whatif"]

_MODES = ("none", "cpc", "dcpc", "dcpcp")

#: EMA weight for the DCPCP hot-chunk score (mirrors the prediction
#: table's default smoothing)
_HOT_SMOOTHING = 0.5
_HOT_CUTOFF = 0.5


class CodecEstimator:
    """Wire-byte model for replaying a payload codec over a raw trace.

    Tracks, per chunk, whether a prior shipment established a base
    version; charges the live codec layer's per-block metadata
    (:data:`~repro.core.codec.DIGEST_META_BYTES` /
    :data:`~repro.core.codec.DELTA_HEADER_BYTES`) and scales re-shipped
    content by *novelty*.  Wire never exceeds logical — same cap the
    live planners apply.
    """

    def __init__(
        self,
        codec: str,
        *,
        block: int = DEFAULT_BLOCK,
        novelty: float = DEFAULT_NOVELTY,
    ) -> None:
        if codec not in codec_names():
            raise ConfigError(
                f"unknown codec {codec!r}; choose from {codec_names()}"
            )
        if block <= 0:
            raise ConfigError("codec block size must be positive")
        if not 0.0 <= novelty <= 1.0:
            raise ConfigError("codec novelty must be in [0, 1]")
        self.codec = codec
        self.block = block
        self.novelty = novelty
        self.logical_bytes = 0
        self.wire_bytes = 0
        self._based: set = set()

    def ship(self, name: str, moved: int) -> int:
        """Model one payload of *moved* logical bytes for chunk *name*;
        returns the wire bytes and folds both into the totals."""
        if moved <= 0:
            return 0
        self.logical_bytes += moved
        if self.codec == "raw":
            self.wire_bytes += moved
            return moved
        blocks = -(-moved // self.block)
        first = name not in self._based
        new_content = moved if first else int(self.novelty * moved)
        dedup = min(moved, new_content + blocks * DIGEST_META_BYTES)
        delta = moved if first else min(
            moved, new_content + blocks * DELTA_HEADER_BYTES
        )
        wire = {"delta": delta, "dedup": dedup}.get(
            self.codec, min(moved, delta, dedup)
        )
        self._based.add(name)
        self.wire_bytes += wire
        return wire

    @property
    def saved_bytes(self) -> int:
        return max(0, self.logical_bytes - self.wire_bytes)


@dataclass
class WhatIfResult:
    """Modelled accounting for one what-if configuration."""

    mode: str
    #: coordinated-step bytes under the what-if policy
    bytes_copied: int = 0
    #: background pre-copy bytes (including redundant re-copies)
    precopy_bytes: int = 0
    #: bytes incremental extents would not move (page granularity)
    bytes_saved: int = 0
    #: modelled blocking seconds across all coordinated steps
    blocking_s: float = 0.0
    intervals: int = 0
    #: fraction of enumerated chunks the trace sized (1.0 = complete)
    coverage: float = 1.0
    #: per-rank coordinated bytes (diagnostics)
    per_rank: Dict[str, int] = field(default_factory=dict)
    #: payload codec the model replayed (``None``: no codec axis)
    codec: Optional[str] = None
    #: modelled pre-codec bytes fed to the codec (== total moved)
    codec_logical_bytes: int = 0
    #: modelled wire bytes after the codec
    codec_wire_bytes: int = 0

    @property
    def total_nvm_bytes(self) -> int:
        return self.bytes_copied + self.precopy_bytes

    @property
    def codec_saved_bytes(self) -> int:
        return max(0, self.codec_logical_bytes - self.codec_wire_bytes)


def _epoch_bytes(
    act: ChunkActivity, size: int, granularity: str
) -> List[int]:
    """Bytes each write epoch would move under *granularity*."""
    copies = act.copies
    if granularity == "page":
        # best extent knowledge we have: what each captured copy moved
        return [
            min(size, _logical(c)) if size else _logical(c) for c in copies
        ]
    return [size or _logical(c) for c in copies]


def _fits(epoch_start: float, nbytes: int, deadline: float, bw: float) -> bool:
    return epoch_start + nbytes / bw <= deadline


def run_whatif(
    workload: Workload,
    mode: str,
    *,
    bandwidth_scale: float = 1.0,
    copy_granularity: Optional[str] = None,
    threshold_margin: float = 1.25,
    adapt_smoothing: float = 0.5,
    codec: Optional[str] = None,
    codec_block: int = DEFAULT_BLOCK,
    codec_novelty: float = DEFAULT_NOVELTY,
) -> WhatIfResult:
    """Replay *workload* under *mode* and return modelled accounting."""
    if mode not in _MODES:
        raise ConfigError(
            f"unknown replay policy mode {mode!r}; choose from {_MODES}"
        )
    if bandwidth_scale <= 0:
        raise ConfigError("bandwidth_scale must be positive")
    granularity = copy_granularity or "chunk"
    if granularity not in ("chunk", "page"):
        raise ConfigError(
            f"unknown copy granularity {granularity!r} (chunk or page)"
        )
    bw = (workload.local_bandwidth or 1.0) * bandwidth_scale
    res = WhatIfResult(mode=mode)
    ce: Optional[CodecEstimator] = None
    if codec is not None:
        ce = CodecEstimator(codec, block=codec_block, novelty=codec_novelty)
        res.codec = codec
    sized = 0
    enumerated_total = 0
    for rank, rw in sorted(workload.ranks.items()):
        rank_coord = 0
        est: Optional[ThresholdEstimator] = None
        if mode in ("dcpc", "dcpcp"):
            est = ThresholdEstimator(
                bandwidth_per_core=bw,
                smoothing=adapt_smoothing,
                margin=threshold_margin,
            )
        hot: Dict[str, float] = {}
        for rec in rw.intervals:
            coord_bytes, precopy_bytes, saved = _replay_interval(
                rec,
                rw,
                mode,
                granularity=granularity,
                bw=bw,
                est=est,
                hot=hot,
                ce=ce,
                rank=rank,
            )
            rank_coord += coord_bytes
            res.bytes_copied += coord_bytes
            res.precopy_bytes += precopy_bytes
            res.bytes_saved += saved
            res.blocking_s += coord_bytes / bw + workload.flush_cost
            res.intervals += 1
            if est is not None:
                data = float(sum(rw.chunk_sizes.values()))
                if rec.compute_window > 0 and data > 0:
                    est.observe_interval(rec.compute_window, data)
            if mode == "dcpcp":
                _update_hot(hot, rec)
            names = rec.enumerated or list(rec.chunks)
            enumerated_total += len(names)
            sized += sum(1 for n in names if rw.chunk_sizes.get(n, 0) > 0)
        if mode != "none":
            # pre-copy activity after the final commit still moves
            # bytes in a live run; charge it in pre-copying modes
            res.precopy_bytes += sum(
                act.moved_bytes for act in rw.trailing.values()
            )
            if ce is not None:
                for name, act in rw.trailing.items():
                    for c in act.copies:
                        ce.ship(f"{rank}/{name}", _logical(c))
        res.per_rank[rank] = rank_coord
    if enumerated_total:
        res.coverage = sized / enumerated_total
    if ce is not None:
        res.codec_logical_bytes = ce.logical_bytes
        res.codec_wire_bytes = ce.wire_bytes
    return res


def _replay_interval(
    rec: IntervalRecord,
    rw: RankWorkload,
    mode: str,
    *,
    granularity: str,
    bw: float,
    est: Optional[ThresholdEstimator],
    hot: Dict[str, float],
    ce: Optional[CodecEstimator] = None,
    rank: str = "",
):
    """Decide one interval's traffic; returns (coordinated, precopy,
    saved) byte counts.  Every modelled shipment is also fed through
    *ce* (when set) — the codec axis sees exactly the payloads the
    policy decided to move."""
    coord = 0
    pre = 0
    saved = 0
    deadline = rec.coordinated_begin
    names = rec.enumerated or list(rec.chunks)

    def ship(name: str, moved: int) -> None:
        if ce is not None:
            ce.ship(f"{rank}/{name}", moved)

    # DCPC: pre-copy may not start before T_p into the interval
    ready = rec.start
    if est is not None:
        ready = rec.start + est.threshold()
    for name in names:
        act = rec.chunks.get(name)
        size = rw.chunk_sizes.get(name, 0)
        if mode == "none":
            # the baseline copies every persistent chunk each step
            if granularity == "page":
                moved = act.moved_bytes if act is not None else 0
            else:
                moved = size
            coord += moved
            ship(name, moved)
            if size and granularity == "page":
                saved += max(0, size - moved)
            continue
        if act is None or not act.copies:
            continue  # clean all interval: dirty-tracking modes skip it
        if mode == "dcpcp" and hot.get(name, 0.0) > _HOT_CUTOFF:
            # withheld: known re-dirtier, pre-copying it is waste
            moved = (
                min(size, act.moved_bytes) if granularity == "page" and size
                else (size or act.moved_bytes)
            )
            coord += moved
            ship(name, moved)
            if size and granularity == "page":
                saved += max(0, size - moved)
            continue
        epochs = act.epochs(rec.start)
        per_epoch = _epoch_bytes(act, size, granularity)
        if mode in ("dcpc", "dcpcp"):
            collapsed = [b for e, b in zip(epochs, per_epoch) if e < ready]
            live_epochs = [
                (e, b) for e, b in zip(epochs, per_epoch) if e >= ready
            ]
            if collapsed:
                merged = min(size, sum(collapsed)) if size else sum(collapsed)
                live_epochs.insert(0, (ready, merged))
        else:
            live_epochs = list(zip(epochs, per_epoch))
        if not live_epochs:
            continue
        *early, (last_e, last_b) = live_epochs
        for _, b in early:
            pre += b
            ship(name, b)
        if _fits(last_e, last_b, deadline, bw):
            pre += last_b
        else:
            coord += last_b
            if size and granularity == "page":
                saved += max(0, size - last_b)
        ship(name, last_b)
    return coord, pre, saved


def _update_hot(hot: Dict[str, float], rec: IntervalRecord) -> None:
    """Fold this interval's re-dirty evidence into the DCPCP scores."""
    for name, act in rec.chunks.items():
        observed = 1.0 if len(act.copies) > 1 else 0.0
        prev = hot.get(name)
        hot[name] = (
            observed
            if prev is None
            else _HOT_SMOOTHING * observed + (1 - _HOT_SMOOTHING) * prev
        )
