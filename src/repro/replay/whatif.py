"""What-if replay: re-run a reconstructed schedule under a different
policy, copy granularity, bandwidth or threshold margin.

This is the *model* path — distinct from the faithful path, which is
exact by construction for the captured config.  The what-if runner
re-decides every chunk's fate per interval from the reconstructed
write epochs, using the same building blocks the live pipeline uses:

* the real :class:`~repro.core.threshold.ThresholdEstimator` (not a
  re-implementation) learns interval/data-size exactly as DCPC does,
  fed the reconstructed compute windows;
* DCPCP's hot-chunk withholding is an EMA over observed re-dirties,
  mirroring the prediction table's eligibility semantics;
* copy costs come from the trace's *observed* bandwidth (bytes over
  span seconds), scaled for bandwidth what-ifs.

What the model cannot know, it reports: replaying at page granularity
from a chunk-granular capture has no extent data (per-epoch moved
bytes fall back to the observed copies), and chunks a skipping policy
never copied have unknown sizes — the ``coverage`` field quantifies
how much of the catalog the trace actually sized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.threshold import ThresholdEstimator
from ..errors import ConfigError
from .reconstruct import ChunkActivity, IntervalRecord, RankWorkload, Workload

__all__ = ["WhatIfResult", "run_whatif"]

_MODES = ("none", "cpc", "dcpc", "dcpcp")

#: EMA weight for the DCPCP hot-chunk score (mirrors the prediction
#: table's default smoothing)
_HOT_SMOOTHING = 0.5
_HOT_CUTOFF = 0.5


@dataclass
class WhatIfResult:
    """Modelled accounting for one what-if configuration."""

    mode: str
    #: coordinated-step bytes under the what-if policy
    bytes_copied: int = 0
    #: background pre-copy bytes (including redundant re-copies)
    precopy_bytes: int = 0
    #: bytes incremental extents would not move (page granularity)
    bytes_saved: int = 0
    #: modelled blocking seconds across all coordinated steps
    blocking_s: float = 0.0
    intervals: int = 0
    #: fraction of enumerated chunks the trace sized (1.0 = complete)
    coverage: float = 1.0
    #: per-rank coordinated bytes (diagnostics)
    per_rank: Dict[str, int] = field(default_factory=dict)

    @property
    def total_nvm_bytes(self) -> int:
        return self.bytes_copied + self.precopy_bytes


def _epoch_bytes(
    act: ChunkActivity, size: int, granularity: str
) -> List[int]:
    """Bytes each write epoch would move under *granularity*."""
    copies = act.copies
    if granularity == "page":
        # best extent knowledge we have: what each captured copy moved
        return [min(size, c.nbytes) if size else c.nbytes for c in copies]
    return [size or c.nbytes for c in copies]


def _fits(epoch_start: float, nbytes: int, deadline: float, bw: float) -> bool:
    return epoch_start + nbytes / bw <= deadline


def run_whatif(
    workload: Workload,
    mode: str,
    *,
    bandwidth_scale: float = 1.0,
    copy_granularity: Optional[str] = None,
    threshold_margin: float = 1.25,
    adapt_smoothing: float = 0.5,
) -> WhatIfResult:
    """Replay *workload* under *mode* and return modelled accounting."""
    if mode not in _MODES:
        raise ConfigError(
            f"unknown replay policy mode {mode!r}; choose from {_MODES}"
        )
    if bandwidth_scale <= 0:
        raise ConfigError("bandwidth_scale must be positive")
    granularity = copy_granularity or "chunk"
    if granularity not in ("chunk", "page"):
        raise ConfigError(
            f"unknown copy granularity {granularity!r} (chunk or page)"
        )
    bw = (workload.local_bandwidth or 1.0) * bandwidth_scale
    res = WhatIfResult(mode=mode)
    sized = 0
    enumerated_total = 0
    for rank, rw in sorted(workload.ranks.items()):
        rank_coord = 0
        est: Optional[ThresholdEstimator] = None
        if mode in ("dcpc", "dcpcp"):
            est = ThresholdEstimator(
                bandwidth_per_core=bw,
                smoothing=adapt_smoothing,
                margin=threshold_margin,
            )
        hot: Dict[str, float] = {}
        for rec in rw.intervals:
            coord_bytes, precopy_bytes, saved = _replay_interval(
                rec,
                rw,
                mode,
                granularity=granularity,
                bw=bw,
                est=est,
                hot=hot,
            )
            rank_coord += coord_bytes
            res.bytes_copied += coord_bytes
            res.precopy_bytes += precopy_bytes
            res.bytes_saved += saved
            res.blocking_s += coord_bytes / bw + workload.flush_cost
            res.intervals += 1
            if est is not None:
                data = float(sum(rw.chunk_sizes.values()))
                if rec.compute_window > 0 and data > 0:
                    est.observe_interval(rec.compute_window, data)
            if mode == "dcpcp":
                _update_hot(hot, rec)
            names = rec.enumerated or list(rec.chunks)
            enumerated_total += len(names)
            sized += sum(1 for n in names if rw.chunk_sizes.get(n, 0) > 0)
        if mode != "none":
            # pre-copy activity after the final commit still moves
            # bytes in a live run; charge it in pre-copying modes
            res.precopy_bytes += sum(
                act.moved_bytes for act in rw.trailing.values()
            )
        res.per_rank[rank] = rank_coord
    if enumerated_total:
        res.coverage = sized / enumerated_total
    return res


def _replay_interval(
    rec: IntervalRecord,
    rw: RankWorkload,
    mode: str,
    *,
    granularity: str,
    bw: float,
    est: Optional[ThresholdEstimator],
    hot: Dict[str, float],
):
    """Decide one interval's traffic; returns (coordinated, precopy,
    saved) byte counts."""
    coord = 0
    pre = 0
    saved = 0
    deadline = rec.coordinated_begin
    names = rec.enumerated or list(rec.chunks)
    # DCPC: pre-copy may not start before T_p into the interval
    ready = rec.start
    if est is not None:
        ready = rec.start + est.threshold()
    for name in names:
        act = rec.chunks.get(name)
        size = rw.chunk_sizes.get(name, 0)
        if mode == "none":
            # the baseline copies every persistent chunk each step
            if granularity == "page":
                moved = act.moved_bytes if act is not None else 0
            else:
                moved = size
            coord += moved
            if size and granularity == "page":
                saved += max(0, size - moved)
            continue
        if act is None or not act.copies:
            continue  # clean all interval: dirty-tracking modes skip it
        if mode == "dcpcp" and hot.get(name, 0.0) > _HOT_CUTOFF:
            # withheld: known re-dirtier, pre-copying it is waste
            moved = (
                min(size, act.moved_bytes) if granularity == "page" and size
                else (size or act.moved_bytes)
            )
            coord += moved
            if size and granularity == "page":
                saved += max(0, size - moved)
            continue
        epochs = act.epochs(rec.start)
        per_epoch = _epoch_bytes(act, size, granularity)
        if mode in ("dcpc", "dcpcp"):
            collapsed = [b for e, b in zip(epochs, per_epoch) if e < ready]
            live_epochs = [
                (e, b) for e, b in zip(epochs, per_epoch) if e >= ready
            ]
            if collapsed:
                merged = min(size, sum(collapsed)) if size else sum(collapsed)
                live_epochs.insert(0, (ready, merged))
        else:
            live_epochs = list(zip(epochs, per_epoch))
        if not live_epochs:
            continue
        *early, (last_e, last_b) = live_epochs
        for _, b in early:
            pre += b
        if _fits(last_e, last_b, deadline, bw):
            pre += last_b
        else:
            coord += last_b
            if size and granularity == "page":
                saved += max(0, size - last_b)
    return coord, pre, saved


def _update_hot(hot: Dict[str, float], rec: IntervalRecord) -> None:
    """Fold this interval's re-dirty evidence into the DCPCP scores."""
    for name, act in rec.chunks.items():
        observed = 1.0 if len(act.copies) > 1 else 0.0
        prev = hot.get(name)
        hot[name] = (
            observed
            if prev is None
            else _HOT_SMOOTHING * observed + (1 - _HOT_SMOOTHING) * prev
        )
