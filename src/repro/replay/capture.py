"""Capture one experiment cell with full trace recording.

The capture path is how the differential tests and the bench replay
block obtain (trace, live result) pairs: run the cell in-process with
an *unbounded* ring buffer on the bus — a bounded buffer would
silently drop early events and break the byte-exactness oracle — and
return both sides.

Captures are in-process by necessity: the trace bus is per-process, so
fork-pool workers' events never reach the parent (see
:mod:`repro.metrics.trace`).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..metrics.trace import BUS, JsonlSink, RingBufferSink, TraceEvent

__all__ = ["CapturedRun", "capture_cell"]


@dataclass
class CapturedRun:
    """A cell's trace plus the live result it must agree with."""

    events: List[TraceEvent] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)
    #: the live RunResult (with ``.cluster`` attached by the driver)
    result: Any = None

    def engine(self):
        """A :class:`~repro.replay.ReplayEngine` over this capture."""
        from . import ReplayEngine

        return ReplayEngine.from_events(self.events, meta=self.meta)

    def write_jsonl(self, target) -> None:
        """Persist the capture as a versioned Jsonl trace."""
        sink = JsonlSink(target, meta=self.meta)
        try:
            for ev in self.events:
                sink.handle(ev)
        finally:
            sink.close()


def capture_cell(
    config: Dict[str, Any], *, overrides: Optional[Dict[str, Any]] = None
) -> CapturedRun:
    """Run one resolved experiment cell under full trace capture.

    *config* is a resolved-config dict (argparse dest names, e.g. from
    :func:`repro.tools.experiment.resolve_config` or a grid cell);
    *overrides* are applied on top.  The run happens on this process's
    bus with capture scoped to the run, so concurrent sinks (if any)
    still see the events too.
    """
    from ..tools.experiment import build_parser, resolve_config, run_experiment

    merged = dict(config)
    if overrides:
        merged.update(overrides)
    # start from parser defaults so partial configs (tests often pin
    # only a few knobs) resolve exactly like the CLI would
    args = build_parser().parse_args([])
    for key, value in merged.items():
        setattr(args, key, value)
    meta = {"config": resolve_config(args)}
    sink = RingBufferSink(capacity=None)
    with BUS.capture(sink):
        result = run_experiment(args)
    return CapturedRun(events=list(sink.events), meta=meta, result=result)
