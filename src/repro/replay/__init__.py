"""Trace-driven replay: re-run a captured checkpoint schedule without
re-executing the application.

The trace bus records everything the pipeline decided and moved
(``policy.decision`` / ``chunk.copied`` / ``commit`` events).  This
package closes the loop:

* :mod:`~repro.replay.reader` — load a trace from a Jsonl stream
  (schema-versioned) or an in-memory :class:`RingBufferSink`;
* :mod:`~repro.replay.reconstruct` — rebuild the per-rank,
  per-interval dirty-chunk activity from the copy extents;
* :mod:`~repro.replay.whatif` — re-run the schedule under a different
  policy / granularity / bandwidth against the threshold and bandwidth
  models (seconds instead of a full simulation);
* :mod:`~repro.replay.divergence` — the differential oracle: assert a
  same-config replay reproduces the live run's byte accounting
  exactly;
* :mod:`~repro.replay.capture` — run one experiment cell in-process
  with full trace capture (the test/bench entry point).

:class:`ReplayEngine` is the façade: faithful accounting for the
captured config, the what-if model for everything else.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import ConfigError
from .capture import CapturedRun, capture_cell
from .divergence import (
    Divergence,
    DivergenceReport,
    accounting_from_events,
    compare_accounting,
    compare_to_run,
)
from .reader import TraceSource, load_source
from .reconstruct import RankWorkload, Workload, reconstruct
from .whatif import WhatIfResult, run_whatif

__all__ = [
    "CapturedRun",
    "capture_cell",
    "Divergence",
    "DivergenceReport",
    "accounting_from_events",
    "compare_accounting",
    "compare_to_run",
    "TraceSource",
    "load_source",
    "RankWorkload",
    "Workload",
    "reconstruct",
    "WhatIfResult",
    "run_whatif",
    "ReplayEngine",
]


class ReplayEngine:
    """One captured trace, many replays.

    ``faithful()`` re-derives the byte/timing accounting verbatim from
    the events — exact by construction, the differential-test oracle.
    ``whatif(...)`` re-runs the reconstructed schedule under different
    knobs through the model.  ``replay(...)`` picks faithful when the
    requested knobs match the captured config and the model otherwise.
    """

    def __init__(self, source, meta: Optional[Dict[str, Any]] = None) -> None:
        src = load_source(source, meta=meta)
        self.events = src.events
        self.meta = src.meta
        self._workload: Optional[Workload] = None

    # -- constructors --------------------------------------------------

    @classmethod
    def from_jsonl(cls, path) -> "ReplayEngine":
        return cls(path)

    @classmethod
    def from_events(
        cls, events, meta: Optional[Dict[str, Any]] = None
    ) -> "ReplayEngine":
        return cls(events, meta=meta)

    # -- captured-config introspection ---------------------------------

    @property
    def captured_config(self) -> Dict[str, Any]:
        """The capturing run's resolved config (empty if the trace
        carried no metadata)."""
        cfg = self.meta.get("config") if isinstance(self.meta, dict) else None
        return dict(cfg) if isinstance(cfg, dict) else {}

    @property
    def workload(self) -> Workload:
        if self._workload is None:
            self._workload = reconstruct(self.events, meta=self.meta)
        return self._workload

    # -- replays -------------------------------------------------------

    def faithful(self):
        """Exact accounting of the captured schedule (the oracle)."""
        return accounting_from_events(self.events)

    def whatif(
        self,
        mode: Optional[str] = None,
        *,
        nvm_gbps: Optional[float] = None,
        copy_granularity: Optional[str] = None,
        threshold_margin: Optional[float] = None,
        codec: Optional[str] = None,
        codec_novelty: Optional[float] = None,
    ) -> WhatIfResult:
        cfg = self.captured_config
        mode = mode or cfg.get("mode")
        if mode is None:
            raise ConfigError(
                "what-if replay needs a policy mode (none in the trace meta)"
            )
        captured_gbps = cfg.get("nvm_gbps")
        scale = 1.0
        if nvm_gbps is not None:
            if not captured_gbps:
                raise ConfigError(
                    "cannot what-if nvm-gbps: the trace meta does not "
                    "record the captured bandwidth"
                )
            scale = float(nvm_gbps) / float(captured_gbps)
        kwargs = {}
        wanted_codec = codec or cfg.get("codec")
        if wanted_codec is not None:
            kwargs["codec"] = wanted_codec
        if codec_novelty is not None:
            kwargs["codec_novelty"] = codec_novelty
        return run_whatif(
            self.workload,
            mode,
            bandwidth_scale=scale,
            copy_granularity=copy_granularity or cfg.get("copy_granularity"),
            threshold_margin=threshold_margin
            if threshold_margin is not None
            else cfg.get("threshold_margin", 1.25),
            **kwargs,
        )

    def matches_captured(self, **overrides: Any) -> bool:
        """True when every supplied override equals the captured
        config's value (the faithful path applies)."""
        cfg = self.captured_config
        keymap = {"nvm_gbps": "nvm_gbps", "mode": "mode",
                  "copy_granularity": "copy_granularity",
                  "threshold_margin": "threshold_margin",
                  "codec": "codec"}
        for key, value in overrides.items():
            if value is None:
                continue
            captured = cfg.get(keymap.get(key, key))
            if captured is None:
                return False
            if isinstance(value, float) or isinstance(captured, float):
                if float(value) != float(captured):
                    return False
            elif value != captured:
                return False
        return True

    def replay(
        self,
        mode: Optional[str] = None,
        *,
        nvm_gbps: Optional[float] = None,
        copy_granularity: Optional[str] = None,
        threshold_margin: Optional[float] = None,
        codec: Optional[str] = None,
        codec_novelty: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One replay cell as a flat sweep-compatible record."""
        from ..units import to_GB

        faithful = codec_novelty is None and self.matches_captured(
            mode=mode,
            nvm_gbps=nvm_gbps,
            copy_granularity=copy_granularity,
            threshold_margin=threshold_margin,
            codec=codec,
        )
        if faithful:
            acc = self.faithful()
            coordinated = acc.bytes_copied
            precopy = acc.precopy_bytes
            saved = acc.bytes_saved
            blocking = acc.blocking_s
            coverage = 1.0
            codec_saved = acc.codec_saved_bytes
        else:
            res = self.whatif(
                mode,
                nvm_gbps=nvm_gbps,
                copy_granularity=copy_granularity,
                threshold_margin=threshold_margin,
                codec=codec,
                codec_novelty=codec_novelty,
            )
            coordinated = res.bytes_copied
            precopy = res.precopy_bytes
            saved = res.bytes_saved
            blocking = res.blocking_s
            coverage = res.coverage
            codec_saved = res.codec_saved_bytes
        cfg = self.captured_config
        return {
            "app": cfg.get("app", ""),
            "policy": mode or cfg.get("mode", ""),
            "replay.faithful": faithful,
            "replay.coordinated_gb": round(to_GB(coordinated), 6),
            "replay.precopy_gb": round(to_GB(precopy), 6),
            "replay.total_gb": round(to_GB(coordinated + precopy), 6),
            "replay.saved_gb": round(to_GB(saved), 6),
            "replay.blocking_s": round(blocking, 6),
            "replay.coverage": round(coverage, 4),
            "replay.codec": codec or cfg.get("codec", "raw"),
            "replay.codec_saved_gb": round(to_GB(codec_saved), 6),
        }
