"""The differential oracle: faithful replay accounting and its
comparison against a live run.

``accounting_from_events`` derives byte accounting *verbatim* from the
event stream — every counted byte is a byte some emitter counted into
its own stats at the same program point — so for a same-config replay
it must equal the live :class:`~repro.cluster.runner.RunResult`
exactly, integer for integer.  Any divergence means the
emit → serialize → read → reconstruct pipeline lost or invented data,
which is precisely what the differential tests exist to catch.

``compare_to_run`` is that assertion's engine, and doubles as a
reusable test fixture (see ``assert_replay_matches`` in the test
suite's conftest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..metrics.trace import ChunkCopiedEvent, CommitEvent, TraceEvent

__all__ = [
    "CommitRecord",
    "ReplayAccounting",
    "Divergence",
    "DivergenceReport",
    "accounting_from_events",
    "compare_accounting",
    "compare_to_run",
    "live_commit_ordering",
]

#: commit tuples are compared on rounded time so a Jsonl float
#: round-trip (exact in CPython, but not guaranteed by the format)
#: can never produce a spurious ordering divergence
_T_DIGITS = 9


@dataclass(frozen=True)
class CommitRecord:
    """One commit point, as replay sees it."""

    t: float
    actor: str
    chunks_committed: int
    bytes_committed: int
    flush_cost: float

    @property
    def key(self) -> Tuple[float, str, int, int]:
        return (round(self.t, _T_DIGITS), self.actor, self.chunks_committed,
                self.bytes_committed)


@dataclass
class ReplayAccounting:
    """Byte/commit accounting derived verbatim from a trace."""

    #: local coordinated-step bytes (== RunResult.coordinated_bytes)
    bytes_copied: int = 0
    #: local background pre-copy bytes (== local_precopy_bytes)
    precopy_bytes: int = 0
    #: coordinated bytes incremental extents did NOT move
    bytes_saved: int = 0
    chunks_copied: int = 0
    precopy_copies: int = 0
    #: remote coordinated-round bytes (== remote_round_bytes)
    remote_round_bytes: int = 0
    #: remote streaming pre-copy bytes (== remote_precopy_bytes)
    remote_stream_bytes: int = 0
    #: bytes the payload codec kept off the wire, any stream
    #: (``logical_bytes - nbytes`` summed over codec-planned copies;
    #: raw copies carry ``logical_bytes == nbytes``, so a raw run
    #: accumulates exactly 0 and the metric is always comparable)
    codec_saved_bytes: int = 0
    commits: List[CommitRecord] = field(default_factory=list)
    #: summed coordinated-step spans (first copy start -> commit);
    #: informational — times are not part of the byte oracle
    blocking_s: float = 0.0

    @property
    def total_nvm_bytes(self) -> int:
        return self.bytes_copied + self.precopy_bytes

    def commit_ordering(self) -> List[Tuple[float, str, int, int]]:
        """Canonical commit order: (t, actor, chunks, bytes) sorted."""
        return sorted(c.key for c in self.commits)


def accounting_from_events(events: List[TraceEvent]) -> ReplayAccounting:
    """One linear pass; no model, no interpretation."""
    acc = ReplayAccounting()
    coord_begin: Dict[str, float] = {}
    for ev in events:
        if isinstance(ev, ChunkCopiedEvent):
            if ev.codec != "raw":
                # codec-planned copy: nbytes is the wire volume, the
                # logical (pre-codec) bytes ride in logical_bytes.
                # Auto rounds won by raw are tagged "raw" with
                # logical == wire, so skipping them changes nothing.
                acc.codec_saved_bytes += ev.logical_bytes - ev.nbytes
            if ev.stream == "remote":
                if ev.phase == "precopy":
                    acc.remote_stream_bytes += ev.nbytes
                else:
                    acc.remote_round_bytes += ev.nbytes
            elif ev.phase == "precopy":
                acc.precopy_bytes += ev.nbytes
                acc.precopy_copies += 1
            else:
                acc.bytes_copied += ev.nbytes
                acc.bytes_saved += ev.bytes_saved
                acc.chunks_copied += 1
                begin = coord_begin.get(ev.actor)
                if begin is None or ev.start < begin:
                    coord_begin[ev.actor] = ev.start
        elif isinstance(ev, CommitEvent):
            acc.commits.append(
                CommitRecord(
                    t=ev.t,
                    actor=ev.actor,
                    chunks_committed=ev.chunks_committed,
                    bytes_committed=ev.bytes_committed,
                    flush_cost=ev.flush_cost,
                )
            )
            begin = coord_begin.pop(ev.actor, None)
            acc.blocking_s += (ev.t - begin) if begin is not None else ev.flush_cost
    return acc


# ---------------------------------------------------------------------------
# Divergence reporting.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Divergence:
    """One metric where replay and live disagree."""

    metric: str
    live: Any
    replayed: Any

    def __str__(self) -> str:
        return f"{self.metric}: live={self.live!r} replayed={self.replayed!r}"


@dataclass
class DivergenceReport:
    """Outcome of one differential comparison."""

    divergences: List[Divergence] = field(default_factory=list)
    #: metrics that were compared (divergent or not)
    compared: List[str] = field(default_factory=list)

    @property
    def matches(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        if self.matches:
            return (
                f"replay matches live run on all "
                f"{len(self.compared)} compared metrics"
            )
        lines = [
            f"replay DIVERGES from live run on "
            f"{len(self.divergences)}/{len(self.compared)} metrics:"
        ]
        lines.extend(f"  - {d}" for d in self.divergences)
        return "\n".join(lines)


def live_commit_ordering(cluster) -> List[Tuple[float, str, int, int]]:
    """The live run's canonical commit order, rebuilt from per-rank
    :class:`~repro.core.engine.CheckpointStats` history (the same
    values the engine put into its ``commit`` events)."""
    recs = []
    for state in cluster.all_ranks():
        ck = state.checkpointer
        two_version = bool(getattr(ck.destination, "two_version", False))
        for s in ck.history:
            committed = (
                s.chunks_copied + s.chunks_skipped if two_version else s.chunks_copied
            )
            recs.append(
                (round(s.end, _T_DIGITS), str(ck.rank), committed, s.bytes_copied)
            )
    return sorted(recs)


def compare_accounting(
    acc: ReplayAccounting, expected: Dict[str, Any]
) -> DivergenceReport:
    """Compare replay accounting against an expected metric dict."""
    report = DivergenceReport()
    for metric, live in expected.items():
        replayed = getattr(acc, metric)
        if callable(replayed):
            replayed = replayed()
        report.compared.append(metric)
        if replayed != live:
            report.divergences.append(
                Divergence(metric=metric, live=live, replayed=replayed)
            )
    return report


def compare_to_run(
    acc: ReplayAccounting, result, *, cluster: Optional[Any] = None
) -> DivergenceReport:
    """Differential oracle: replay accounting vs a live run.

    Byte counters come from the :class:`RunResult`; per-rank
    ``bytes_saved`` and the commit ordering need the live cluster
    (``run_experiment`` attaches it as ``result.cluster``)."""
    report = DivergenceReport()

    def check(metric: str, live: Any, replayed: Any) -> None:
        report.compared.append(metric)
        if replayed != live:
            report.divergences.append(
                Divergence(metric=metric, live=live, replayed=replayed)
            )

    check("coordinated_bytes", result.coordinated_bytes, acc.bytes_copied)
    check("local_precopy_bytes", result.local_precopy_bytes, acc.precopy_bytes)
    check("total_nvm_bytes", result.total_nvm_bytes, acc.total_nvm_bytes)
    check("remote_round_bytes", result.remote_round_bytes, acc.remote_round_bytes)
    check(
        "remote_precopy_bytes", result.remote_precopy_bytes, acc.remote_stream_bytes
    )
    check("local_checkpoints", result.local_checkpoints, len(acc.commits))
    if getattr(result, "codec", False):
        live_codec_saved = max(
            0, result.codec_logical_bytes - result.codec_wire_bytes
        )
        check("codec_saved_bytes", live_codec_saved, acc.codec_saved_bytes)
    if cluster is None:
        cluster = getattr(result, "cluster", None)
    if cluster is not None:
        live_saved = sum(
            state.checkpointer.total_bytes_saved for state in cluster.all_ranks()
        )
        check("bytes_saved", live_saved, acc.bytes_saved)
        live_chunks = sum(
            s.chunks_copied
            for state in cluster.all_ranks()
            for s in state.checkpointer.history
        )
        check("chunks_copied", live_chunks, acc.chunks_copied)
        check(
            "commit_ordering", live_commit_ordering(cluster), acc.commit_ordering()
        )
    return report
