"""Rebuild per-rank checkpoint-interval structure from a trace.

The trace records what *moved* (``chunk.copied`` extents) and when
each interval *closed* (``commit``).  This module inverts that into
the dirty-page activity the what-if model needs:

* intervals per rank, delimited by that rank's commit events;
* per interval, per chunk: the observed copies and the *write epochs*
  they imply.  Each copy clears the chunk's dirty state for its
  stream, so a later copy of the same chunk in the same interval is
  evidence of a re-dirty after the earlier copy completed.  Epoch 0 is
  the interval start (the chunk was dirty when the window opened);
  epoch *i* begins when copy *i-1* finished.
* the chunk catalog (names, best-known full sizes) from the
  coordinated steps' full ``policy.decision`` enumeration plus
  ``nbytes + bytes_saved`` on every copy;
* the observed local copy bandwidth (bytes over span seconds), the
  scaling basis for bandwidth what-ifs.

Actor conventions (see the emitters): a rank's coordinated events use
``actor == str(rank)``, its background pre-copy engine uses
``actor == f"{rank}:precopy"``, remote helpers use ``"<node>:helper"``
with ``stream == "remote"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..metrics.trace import (
    ChunkCopiedEvent,
    CommitEvent,
    PolicyDecisionEvent,
    TraceEvent,
)

__all__ = [
    "ChunkActivity",
    "IntervalRecord",
    "RankWorkload",
    "Workload",
    "reconstruct",
]

_PRECOPY_SUFFIX = ":precopy"


def _logical(ev: ChunkCopiedEvent) -> int:
    """Pre-codec bytes of a copy: the dirty-data evidence the what-if
    model needs.  Codec-planned copies ship fewer wire bytes
    (``nbytes``) than the dirty bytes they represent; raw copies carry
    ``logical_bytes == nbytes`` (and 0 from hand-built events, where
    ``nbytes`` is the only truth)."""
    return ev.logical_bytes or ev.nbytes


@dataclass
class ChunkActivity:
    """One chunk's observed movement inside one interval."""

    chunk: str
    #: full chunk size (max observed ``nbytes + bytes_saved``)
    size: int = 0
    #: pre-copy events, in order (torn copies included — they moved
    #: bytes and imply a write during the span)
    precopies: List[ChunkCopiedEvent] = field(default_factory=list)
    #: the coordinated-step copy closing the interval, if any
    coordinated: Optional[ChunkCopiedEvent] = None

    @property
    def copies(self) -> List[ChunkCopiedEvent]:
        out: List[ChunkCopiedEvent] = list(self.precopies)
        if self.coordinated is not None:
            out.append(self.coordinated)
        return out

    @property
    def moved_bytes(self) -> int:
        """Pre-codec (logical) bytes the observed copies represent."""
        return sum(_logical(c) for c in self.copies)

    def epochs(self, interval_start: float) -> List[float]:
        """Write-epoch *service* times implied by the observed copies.

        One epoch per copy.  The actual write lands somewhere between
        the previous copy's completion and this copy's start; the copy
        start is the only evidence-backed bound on when the dirty
        state became actionable, so the model uses it (an
        earlier-biased estimate would let every re-dirty "fit" as a
        pre-copy, which the captured coordinated copies disprove)."""
        if not self.copies:
            return []
        return [max(interval_start, c.start) for c in self.copies]


@dataclass
class IntervalRecord:
    """One rank's checkpoint interval: compute window + coordinated
    step, closed by a commit."""

    index: int
    #: window open: the previous commit's t (0.0 for the first)
    start: float
    #: coordinated step begin (earliest coordinated activity observed;
    #: falls back to the commit time for all-skipped steps)
    coordinated_begin: float
    #: the closing commit
    commit: CommitEvent
    chunks: Dict[str, ChunkActivity] = field(default_factory=dict)
    #: every persistent chunk the coordinated step enumerated
    #: (``copy_at_checkpoint`` + ``skip`` decisions)
    enumerated: List[str] = field(default_factory=list)

    @property
    def compute_window(self) -> float:
        """Seconds of pre-copy opportunity before the coordinated step."""
        return max(0.0, self.coordinated_begin - self.start)


@dataclass
class RankWorkload:
    """Everything one rank's trace implies about its schedule."""

    rank: str
    intervals: List[IntervalRecord] = field(default_factory=list)
    #: pre-copy activity after the last commit (the run ended before
    #: another coordinated step; counted in totals, not replayed)
    trailing: Dict[str, ChunkActivity] = field(default_factory=dict)
    #: chunk name -> best-known full size
    chunk_sizes: Dict[str, int] = field(default_factory=dict)

    @property
    def persistent_chunks(self) -> List[str]:
        return sorted(self.chunk_sizes)


@dataclass
class Workload:
    """The reconstructed cluster-wide schedule."""

    ranks: Dict[str, RankWorkload] = field(default_factory=dict)
    #: observed local copy bandwidth (bytes/s over copy spans); 0.0
    #: when the trace has no timed local copies
    local_bandwidth: float = 0.0
    #: mean observed commit flush cost (seconds)
    flush_cost: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)

    def rank(self, name: str) -> RankWorkload:
        if name not in self.ranks:
            self.ranks[name] = RankWorkload(rank=name)
        return self.ranks[name]


def _rank_of(actor: str) -> str:
    if actor.endswith(_PRECOPY_SUFFIX):
        return actor[: -len(_PRECOPY_SUFFIX)]
    return actor


def reconstruct(
    events: List[TraceEvent], *, meta: Optional[Dict[str, Any]] = None
) -> Workload:
    """Fold the chronological event stream into a :class:`Workload`."""
    wl = Workload(meta=dict(meta or {}))
    # per-rank open-interval state
    open_chunks: Dict[str, Dict[str, ChunkActivity]] = {}
    open_start: Dict[str, float] = {}
    open_coord_begin: Dict[str, Optional[float]] = {}
    open_enumerated: Dict[str, List[str]] = {}
    span_bytes = 0
    span_seconds = 0.0
    flush_costs: List[float] = []

    def activity(rank: str, chunk: str) -> ChunkActivity:
        chunks = open_chunks.setdefault(rank, {})
        if chunk not in chunks:
            chunks[chunk] = ChunkActivity(chunk=chunk)
        return chunks[chunk]

    for ev in events:
        if isinstance(ev, ChunkCopiedEvent):
            if ev.stream != "local":
                continue
            rank = _rank_of(ev.actor)
            rw = wl.rank(rank)
            act = activity(rank, ev.chunk)
            full = _logical(ev) + ev.bytes_saved
            act.size = max(act.size, full)
            rw.chunk_sizes[ev.chunk] = max(rw.chunk_sizes.get(ev.chunk, 0), full)
            if ev.phase == "precopy":
                act.precopies.append(ev)
            else:
                act.coordinated = ev
                begin = open_coord_begin.setdefault(rank, None)
                if begin is None or ev.start < begin:
                    open_coord_begin[rank] = ev.start
            if ev.t > ev.start and ev.nbytes > 0:
                span_bytes += ev.nbytes
                span_seconds += ev.t - ev.start
        elif isinstance(ev, PolicyDecisionEvent):
            # coordinated-step enumeration: actor is the bare rank and
            # the decision is copy/skip (pre-copy decisions come from
            # the ":precopy" actor; threshold recomputes use chunk "*")
            if ev.decision not in ("copy_at_checkpoint", "skip") or ev.chunk == "*":
                continue
            if ev.actor.endswith(_PRECOPY_SUFFIX):
                continue
            rank = ev.actor
            open_enumerated.setdefault(rank, []).append(ev.chunk)
            wl.rank(rank).chunk_sizes.setdefault(ev.chunk, 0)
            if open_coord_begin.get(rank) is None:
                open_coord_begin[rank] = ev.t
        elif isinstance(ev, CommitEvent):
            rank = ev.actor
            rw = wl.rank(rank)
            begin = open_coord_begin.get(rank)
            rec = IntervalRecord(
                index=len(rw.intervals),
                start=open_start.get(rank, 0.0),
                coordinated_begin=begin if begin is not None else ev.t,
                commit=ev,
                chunks=open_chunks.pop(rank, {}),
                enumerated=open_enumerated.pop(rank, []),
            )
            rw.intervals.append(rec)
            open_start[rank] = ev.t
            open_coord_begin[rank] = None
            flush_costs.append(ev.flush_cost)

    for rank, chunks in open_chunks.items():
        if chunks:
            wl.rank(rank).trailing = chunks
    if span_seconds > 0:
        wl.local_bandwidth = span_bytes / span_seconds
    if flush_costs:
        wl.flush_cost = sum(flush_costs) / len(flush_costs)
    return wl
