"""Named RNG streams: determinism and independence."""

import numpy as np
import pytest

from repro.sim import RngStreams


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(7).stream("x").random(5)
        b = RngStreams(7).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_different_names_different_streams(self):
        r = RngStreams(7)
        a = r.stream("x").random(5)
        b = r.stream("y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random(5)
        b = RngStreams(2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_stream_cached(self):
        r = RngStreams(0)
        assert r.stream("x") is r.stream("x")

    def test_order_independence(self):
        r1 = RngStreams(3)
        r1.stream("a")
        a_then = r1.stream("b").random(3)
        r2 = RngStreams(3)
        b_only = r2.stream("b").random(3)
        assert np.array_equal(a_then, b_only)

    def test_spawn_independent(self):
        parent = RngStreams(5)
        child = parent.spawn("node0")
        a = parent.stream("x").random(3)
        b = child.stream("x").random(3)
        assert not np.array_equal(a, b)

    def test_spawn_deterministic(self):
        a = RngStreams(5).spawn("node0").stream("x").random(3)
        b = RngStreams(5).spawn("node0").stream("x").random(3)
        assert np.array_equal(a, b)

    def test_exponential_mean(self):
        r = RngStreams(11)
        draws = [r.exponential("f", 10.0) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(10.0, rel=0.1)

    def test_exponential_validates_mean(self):
        with pytest.raises(ValueError):
            RngStreams(0).exponential("f", 0.0)
