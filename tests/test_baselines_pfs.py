"""The PFS baseline: shared-resource contention, cluster integration."""

import pytest

from repro.apps import SyntheticModel
from repro.baselines import PfsModel, async_noprecopy_config, make_pfs_transfer
from repro.cluster import Cluster, ClusterRunner
from repro.config import ClusterConfig
from repro.sim import Engine
from repro.units import GB_per_sec, MB
from tests.conftest import run_proc


class TestPfsModel:
    def test_write_timing_includes_metadata_latency(self):
        engine = Engine()
        pfs = PfsModel(engine, aggregate_bandwidth=MB(100), metadata_latency=0.01)

        def p():
            yield pfs.write(MB(100))
            return engine.now

        t = run_proc(engine, p())
        assert t == pytest.approx(1.01, rel=0.01)
        assert pfs.file_ops == 1

    def test_global_sharing_across_writers(self):
        """Two writers each writing 1 second of data take 2 seconds:
        the PFS pipe is shared, unlike per-node NVM."""
        engine = Engine()
        pfs = PfsModel(engine, aggregate_bandwidth=MB(100), metadata_latency=0.0)
        ends = []

        def p():
            yield pfs.write(MB(100), tag="w")
            ends.append(engine.now)

        engine.process(p())
        engine.process(p())
        engine.run()
        assert max(ends) == pytest.approx(2.0, rel=0.01)

    def test_total_bytes(self):
        engine = Engine()
        pfs = PfsModel(engine)

        def p():
            yield pfs.write(MB(7), tag="r0:pfsckpt")

        run_proc(engine, p())
        assert pfs.total_bytes == pytest.approx(MB(7))

    def test_transfer_adapter(self):
        engine = Engine()
        pfs = PfsModel(engine, aggregate_bandwidth=MB(10), metadata_latency=0.0)
        fn = make_pfs_transfer(pfs, "r0")

        class FakeChunk:
            nbytes = MB(10)

        def p():
            yield fn(FakeChunk())
            return engine.now

        assert run_proc(engine, p()) == pytest.approx(1.0, rel=0.01)


class TestClusterIntegration:
    def _run(self, pfs_bw=None):
        cluster = Cluster(ClusterConfig(nodes=2), nvm_write_bandwidth=GB_per_sec(2.0), seed=4)
        app = SyntheticModel(checkpoint_mb_per_rank=100, chunk_mb=25,
                             iteration_compute_time=20.0)
        pfs = PfsModel(cluster.engine, aggregate_bandwidth=pfs_bw) if pfs_bw else None
        cluster.build(app, async_noprecopy_config(20, 1e6),
                      ranks_per_node=4, with_remote=False, pfs=pfs)
        res = ClusterRunner(cluster).run(3)
        return res, pfs, cluster

    def test_pfs_checkpoints_flow_through_pfs(self):
        res, pfs, cluster = self._run(pfs_bw=GB_per_sec(1.0))
        assert pfs is not None
        # 8 ranks x 100 MB x 3 checkpoints
        assert pfs.total_bytes == pytest.approx(8 * MB(100) * 3)
        # nothing staged into NVM shadow versions
        assert all(
            c.committed_version == -1
            for state in cluster.all_ranks()
            for c in state.allocator.persistent_chunks()
        )

    def test_slower_pfs_slower_run(self):
        fast, _, _ = self._run(pfs_bw=GB_per_sec(4.0))
        slow, _, _ = self._run(pfs_bw=GB_per_sec(0.5))
        assert slow.total_time > fast.total_time

    def test_pfs_slower_than_local_nvm(self):
        """The motivating comparison: a shared 1 GB/s PFS vs per-node
        2 GB/s NVM."""
        pfs_res, _, _ = self._run(pfs_bw=GB_per_sec(1.0))
        nvm_res, _, _ = self._run(pfs_bw=None)
        assert pfs_res.total_time > nvm_res.total_time
