"""End-to-end cluster runs: timing, accounting, failure recovery."""

import pytest

from repro.apps import SyntheticModel
from repro.baselines import async_noprecopy_config, precopy_config
from repro.cluster import Cluster, ClusterRunner
from repro.config import CheckpointConfig, ClusterConfig, FailureConfig, PrecopyPolicy
from repro.units import GB_per_sec, MB


def small_app(**kw):
    defaults = dict(
        checkpoint_mb_per_rank=40,
        chunk_mb=10,
        iteration_compute_time=20.0,
        comm_mb_per_iteration=10,
    )
    defaults.update(kw)
    return SyntheticModel(**defaults)


def run_small(ckcfg, iters=3, nodes=2, ranks=2, app=None, failure=None, seed=1):
    cluster = Cluster(ClusterConfig(nodes=nodes), nvm_write_bandwidth=GB_per_sec(2.0), seed=seed)
    cluster.build(app or small_app(), ckcfg, ranks_per_node=ranks)
    return ClusterRunner(cluster, failure_config=failure).run(iters)


class TestBasicRuns:
    def test_total_time_exceeds_ideal(self):
        res = run_small(precopy_config(20, 60))
        assert res.iterations == 3
        assert res.total_time >= res.ideal_time
        assert res.ideal_time == pytest.approx(60.0)

    def test_local_checkpoints_counted(self):
        res = run_small(precopy_config(20, 60))
        assert res.local_checkpoints == 3 * res.n_ranks

    def test_no_precopy_slower_than_precopy(self):
        pre = run_small(precopy_config(20, 60), iters=4)
        nop = run_small(async_noprecopy_config(20, 60), iters=4)
        assert pre.total_time < nop.total_time
        assert pre.local_ckpt_time_avg < nop.local_ckpt_time_avg

    def test_dirty_tracking_reduces_coordinated_bytes(self):
        pre = run_small(precopy_config(20, 60), iters=4)
        nop = run_small(async_noprecopy_config(20, 60), iters=4)
        assert pre.coordinated_bytes < nop.coordinated_bytes
        # pre-copy + coordinated covers at least the dirty volume
        assert pre.total_nvm_bytes > 0

    def test_remote_rounds_happen(self):
        res = run_small(precopy_config(20, 45), iters=6)
        assert res.remote_rounds >= res.n_nodes  # at least 1 per helper

    def test_determinism(self):
        a = run_small(precopy_config(20, 60), seed=3)
        b = run_small(precopy_config(20, 60), seed=3)
        assert a.total_time == b.total_time
        assert a.total_nvm_bytes == b.total_nvm_bytes

    def test_ideal_run_without_checkpoints(self):
        cluster = Cluster(ClusterConfig(nodes=2), seed=1)
        app = small_app(comm_mb_per_iteration=0)
        cluster.build(app, precopy_config(20, 60), ranks_per_node=2, with_remote=False)
        res = ClusterRunner(cluster, local_checkpoints=False).run(3)
        assert res.total_time == pytest.approx(res.ideal_time, rel=0.01)

    def test_efficiency_metric(self):
        cluster = Cluster(ClusterConfig(nodes=2), seed=1)
        cluster.build(small_app(), precopy_config(20, 60), ranks_per_node=2, with_remote=False)
        ideal = ClusterRunner(cluster, local_checkpoints=False).run(3)
        actual = run_small(precopy_config(20, 60))
        eff = actual.efficiency_vs(ideal)
        assert 0.5 < eff <= 1.0


class TestFailureRuns:
    def test_soft_failure_recovers_and_completes(self):
        fc = FailureConfig(mtbf_local=150.0, mtbf_remote=1e9, seed=13)
        res = run_small(precopy_config(20, 60), iters=5, failure=fc)
        assert res.iterations == 5
        assert res.soft_failures >= 1
        assert res.hard_failures == 0
        assert res.recovery_time > 0

    def test_hard_failure_recovers_and_completes(self):
        fc = FailureConfig(mtbf_local=1e9, mtbf_remote=220.0, seed=13)
        res = run_small(precopy_config(20, 60), iters=5, failure=fc)
        assert res.iterations == 5
        assert res.hard_failures >= 1
        assert res.recovery_time > 0

    def test_failures_extend_runtime(self):
        clean = run_small(precopy_config(20, 60), iters=5)
        fc = FailureConfig(mtbf_local=150.0, mtbf_remote=600.0, seed=9)
        faulty = run_small(precopy_config(20, 60), iters=5, failure=fc)
        assert faulty.total_time > clean.total_time

    def test_hard_failure_recompute_rolls_back_to_remote(self):
        fc = FailureConfig(mtbf_local=1e9, mtbf_remote=220.0, seed=13)
        res = run_small(precopy_config(20, 60), iters=5, failure=fc)
        # some iterations were recomputed (rollback past local ckpts)
        assert res.iterations_recomputed >= 1

    def test_fail_until_iteration_guard(self):
        fc = FailureConfig(mtbf_local=30.0, mtbf_remote=1e9, seed=2)
        cluster = Cluster(ClusterConfig(nodes=2), nvm_write_bandwidth=GB_per_sec(2.0), seed=2)
        cluster.build(small_app(), precopy_config(20, 60), ranks_per_node=2)
        runner = ClusterRunner(cluster, failure_config=fc, fail_until_iteration=2)
        res = runner.run(4)
        assert res.iterations == 4  # completes despite tiny MTBF


class TestAccountingDetails:
    def test_fabric_traffic_split(self):
        res = run_small(precopy_config(20, 45), iters=6)
        assert res.fabric_app_bytes > 0
        assert res.fabric_ckpt_bytes > 0

    def test_helper_utilization_positive_with_remote(self):
        res = run_small(precopy_config(20, 45), iters=6)
        assert 0 < res.helper_utilization < 1

    def test_timeline_attached(self):
        res = run_small(precopy_config(20, 60))
        from repro.metrics.timeline import LOCAL_CKPT

        assert res.timeline.count(LOCAL_CKPT) == res.local_checkpoints

    def test_checkpoint_overhead_fraction(self):
        res = run_small(async_noprecopy_config(20, 60), iters=4)
        assert res.checkpoint_overhead_fraction > 0
