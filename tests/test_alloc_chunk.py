"""Chunks: write barrier, dirt/protection, versioning, checksums."""

import numpy as np
import pytest

from repro.alloc.chunk import Chunk, ChunkState
from repro.errors import CheckpointError
from repro.memory import InMemoryStore, NVMKernelManager


def make_chunk(nbytes=8192, n_versions=2, phantom=False, clock=None):
    store = InMemoryStore()
    nvmm = NVMKernelManager(store=store)
    versions = [
        nvmm.nvmmap("p0", f"c#v{i}", nbytes, phantom=phantom) for i in range(n_versions)
    ]
    chunk = Chunk(
        chunk_id=1,
        name="c",
        nbytes=nbytes,
        phantom=phantom,
        dram_buffer=None if phantom else np.zeros(nbytes, dtype=np.uint8),
        nvm_versions=versions,
        clock=clock or (lambda: 0.0),
    )
    return chunk, nvmm


class TestWriteBarrier:
    def test_write_stores_bytes(self):
        chunk, _ = make_chunk()
        chunk.write(0, np.arange(100, dtype=np.float64))
        assert np.array_equal(chunk.view(np.float64)[:100], np.arange(100))

    def test_write_marks_both_dirty_bits(self):
        chunk, _ = make_chunk()
        chunk.dirty_local = chunk.dirty_remote = False
        chunk.write(0, b"\x01")
        assert chunk.dirty_local and chunk.dirty_remote

    def test_write_counts_mods(self):
        chunk, _ = make_chunk()
        before = chunk.total_mods
        chunk.write(0, b"\x01")
        chunk.write(1, b"\x02")
        assert chunk.total_mods == before + 2
        assert chunk.mods_this_interval == 2

    def test_protected_write_takes_exactly_one_fault(self):
        chunk, _ = make_chunk()
        chunk.mark_precopied("local")
        assert chunk.write(0, b"\x01") == 1
        assert chunk.write(1, b"\x02") == 0  # chunk already unprotected
        assert chunk.fault_count == 1

    def test_unprotected_write_no_fault(self):
        chunk, _ = make_chunk()
        assert chunk.write(0, b"\x01") == 0

    def test_out_of_bounds_write(self):
        chunk, _ = make_chunk(nbytes=16)
        with pytest.raises(CheckpointError):
            chunk.write(8, np.zeros(16, dtype=np.uint8))

    def test_observers_called(self):
        seen = []
        chunk, _ = make_chunk(clock=lambda: 42.0)
        chunk.on_dirty.append(lambda c, t: seen.append((c.name, t)))
        chunk.write(0, b"\x01")
        assert seen == [("c", 42.0)]

    def test_view_is_read_only(self):
        chunk, _ = make_chunk()
        v = chunk.view(np.float64)
        with pytest.raises(ValueError):
            v[0] = 1.0

    def test_view_shape(self):
        chunk, _ = make_chunk(nbytes=8 * 12)
        v = chunk.view(np.float64, shape=(3, 4))
        assert v.shape == (3, 4)

    def test_phantom_write_rejected_touch_works(self):
        chunk, _ = make_chunk(phantom=True)
        with pytest.raises(CheckpointError):
            chunk.write(0, b"\x01")
        chunk.dirty_local = False
        chunk.touch()
        assert chunk.dirty_local

    def test_phantom_read_rejected(self):
        chunk, _ = make_chunk(phantom=True)
        with pytest.raises(CheckpointError):
            chunk.read()
        with pytest.raises(CheckpointError):
            chunk.view()


class TestVersioning:
    def test_fresh_chunk_has_no_committed_version(self):
        chunk, _ = make_chunk()
        assert chunk.committed_version == -1
        with pytest.raises(CheckpointError):
            chunk.committed_region()

    def test_commit_flips_between_slots(self):
        chunk, _ = make_chunk()
        assert chunk.inprogress_index() == 0
        chunk.stage_to_nvm()
        chunk.commit()
        assert chunk.committed_version == 0
        assert chunk.inprogress_index() == 1
        chunk.stage_to_nvm()
        chunk.commit()
        assert chunk.committed_version == 1
        assert chunk.inprogress_index() == 0

    def test_single_version_mode(self):
        chunk, _ = make_chunk(n_versions=1)
        chunk.stage_to_nvm()
        chunk.commit()
        assert chunk.inprogress_index() == 0  # always slot 0

    def test_commit_preserves_old_version_data(self):
        chunk, _ = make_chunk()
        chunk.write(0, np.full(10, 1, dtype=np.uint8))
        chunk.stage_to_nvm()
        chunk.commit()
        v0 = chunk.committed_region()
        chunk.write(0, np.full(10, 2, dtype=np.uint8))
        chunk.stage_to_nvm()  # goes to slot 1
        assert (v0.read(0, 10) == 1).all()

    def test_stage_requires_regions(self):
        chunk = Chunk(chunk_id=1, name="x", nbytes=8, dram_buffer=np.zeros(8, dtype=np.uint8))
        with pytest.raises(CheckpointError):
            chunk.stage_to_nvm()

    def test_restore_from_committed(self):
        chunk, _ = make_chunk()
        data = np.arange(1024, dtype=np.float64)
        chunk.write(0, data)
        chunk.stage_to_nvm()
        chunk.commit()
        chunk.write(0, np.zeros(1024, dtype=np.float64))
        chunk.restore_from_committed()
        assert np.array_equal(chunk.view(np.float64), data)

    def test_bytes_copied_accounting(self):
        chunk, _ = make_chunk(nbytes=4096)
        chunk.stage_to_nvm()
        chunk.stage_to_nvm()
        assert chunk.bytes_copied_local == 8192


class TestChecksums:
    def test_checksum_verifies_after_commit(self):
        chunk, _ = make_chunk()
        chunk.write(0, np.arange(100, dtype=np.float64))
        chunk.stage_to_nvm()
        chunk.commit(with_checksum=True)
        assert chunk.verify_checksum()

    def test_checksum_detects_corruption(self):
        chunk, nvmm = make_chunk()
        chunk.write(0, np.arange(100, dtype=np.float64))
        chunk.stage_to_nvm()
        chunk.commit(with_checksum=True)
        # corrupt the committed NVM bytes behind the chunk's back
        nvmm.store.write("p0/c#v0", 0, np.full(8, 0xFF, dtype=np.uint8))
        assert not chunk.verify_checksum()

    def test_no_committed_version_fails_verification(self):
        chunk, _ = make_chunk()
        assert not chunk.verify_checksum()

    def test_checksum_disabled_passes(self):
        chunk, _ = make_chunk()
        chunk.stage_to_nvm()
        chunk.commit(with_checksum=False)
        assert chunk.verify_checksum()  # None checksum -> trusted

    def test_phantom_checksum(self):
        chunk, _ = make_chunk(phantom=True)
        chunk.versions[0].write_phantom(0, chunk.nbytes)
        chunk.commit(with_checksum=True)
        assert chunk.verify_checksum()


class TestStateAndIntervals:
    def test_per_stream_state_independent(self):
        chunk, _ = make_chunk()
        chunk.set_state("local", ChunkState.CHECKPOINTING)
        assert chunk.get_state("remote") is ChunkState.IDLE
        chunk.set_state("remote", ChunkState.PRECOPYING)
        assert chunk.get_state("local") is ChunkState.CHECKPOINTING

    def test_begin_interval_resets_counter(self):
        chunk, _ = make_chunk()
        chunk.write(0, b"\x01")
        chunk.begin_interval()
        assert chunk.mods_this_interval == 0
        assert chunk.total_mods > 1  # lifetime counter untouched

    def test_mark_precopied_streams(self):
        chunk, _ = make_chunk()
        chunk.mark_precopied("local")
        assert not chunk.dirty_local and chunk.dirty_remote
        chunk.mark_precopied("remote")
        assert not chunk.dirty_remote
        assert chunk.protected

    def test_mark_precopied_unknown_stream(self):
        chunk, _ = make_chunk()
        with pytest.raises(ValueError):
            chunk.mark_precopied("sideways")
