"""Metrics: timelines, collectors, report rendering."""

import pytest

from repro.metrics import (
    CpuUtilization,
    DataVolume,
    InterconnectUsage,
    Series,
    Table,
    Timeline,
    render_series,
    render_table,
)
from repro.metrics import timeline as tl
from repro.metrics.report import fmt
from repro.sim import BandwidthResource, CpuCores, Engine
from tests.conftest import run_proc


class TestTimeline:
    def test_record_and_totals(self):
        t = Timeline()
        t.record("r0", tl.COMPUTE, 0.0, 10.0)
        t.record("r0", tl.LOCAL_CKPT, 10.0, 12.0)
        t.record("r1", tl.COMPUTE, 0.0, 9.0)
        assert t.total(tl.COMPUTE) == pytest.approx(19.0)
        assert t.total(tl.COMPUTE, actor="r0") == pytest.approx(10.0)
        assert t.count(tl.LOCAL_CKPT) == 1

    def test_begin_end_pairs(self):
        t = Timeline()
        t.begin("r0", tl.COMPUTE, 1.0)
        t.end("r0", tl.COMPUTE, 4.0)
        assert t.total(tl.COMPUTE) == pytest.approx(3.0)

    def test_end_without_begin_rejected(self):
        t = Timeline()
        with pytest.raises(ValueError):
            t.end("r0", tl.COMPUTE, 1.0)

    def test_negative_duration_rejected(self):
        t = Timeline()
        with pytest.raises(ValueError):
            t.record("r0", tl.COMPUTE, 5.0, 4.0)

    def test_actors_and_kinds(self):
        t = Timeline()
        t.record("b", tl.COMPUTE, 0, 1)
        t.record("a", tl.PRECOPY, 0, 1)
        assert t.actors() == ["a", "b"]
        assert set(t.kinds()) == {tl.COMPUTE, tl.PRECOPY}

    def test_span(self):
        t = Timeline()
        assert t.span() == (0.0, 0.0)
        t.record("a", tl.COMPUTE, 2.0, 5.0)
        t.record("a", tl.COMPUTE, 7.0, 9.0)
        assert t.span() == (2.0, 9.0)

    def test_overlap_measures_hidden_checkpoint_time(self):
        """Fig. 5's point: pre-copy overlaps checkpointing with compute."""
        t = Timeline()
        t.record("r0", tl.COMPUTE, 0.0, 10.0)
        t.record("helper", tl.PRECOPY, 6.0, 12.0)
        assert t.overlap(tl.COMPUTE, tl.PRECOPY) == pytest.approx(4.0)

    def test_overlap_disjoint(self):
        t = Timeline()
        t.record("r0", tl.COMPUTE, 0.0, 5.0)
        t.record("r0", tl.LOCAL_CKPT, 5.0, 6.0)
        assert t.overlap(tl.COMPUTE, tl.LOCAL_CKPT) == 0.0

    def test_ascii_art_contains_glyphs(self):
        t = Timeline()
        t.record("r0", tl.COMPUTE, 0.0, 10.0)
        t.record("r0", tl.LOCAL_CKPT, 10.0, 12.0)
        art = t.ascii_art(width=40)
        assert "C" in art and "L" in art and "r0" in art

    def test_ascii_art_empty(self):
        assert "empty" in Timeline().ascii_art()


class TestCollectors:
    def test_interconnect_usage_windows(self, engine):
        bw = BandwidthResource(engine, 100.0)

        def p():
            yield bw.transfer(200.0, tag="r0:rckpt")

        run_proc(engine, p())
        usage = InterconnectUsage(bw)
        assert usage.peak_rate() == pytest.approx(100.0)
        assert usage.peak_window_volume(1.0, t_end=4.0) == pytest.approx(100.0)
        assert usage.total_bytes() == pytest.approx(200.0)
        assert usage.total_bytes("r0:rckpt") == pytest.approx(200.0)

    def test_cpu_utilization(self, engine):
        cpu = CpuCores(engine, 12)
        cpu.charge("helper", 25.0)
        cpu.charge("app", 50.0)
        u = CpuUtilization(cpu)
        assert u.utilization("helper", 100.0) == pytest.approx(0.25)
        assert u.node_utilization(100.0) == pytest.approx(75.0 / 1200.0)
        assert u.by_owner(100.0)["app"] == pytest.approx(0.5)

    def test_data_volume_queries(self, engine):
        bw = BandwidthResource(engine, 1000.0)

        def p():
            yield bw.transfer(100.0, tag="r0:lckpt")
            yield bw.transfer(50.0, tag="r1:lckpt")
            yield bw.transfer(30.0, tag="r0:precopy")

        run_proc(engine, p())
        dv = DataVolume(bw)
        assert dv.total() == pytest.approx(180.0)
        assert dv.suffix(":lckpt") == pytest.approx(150.0)
        assert dv.matching("r0:") == pytest.approx(130.0)
        assert dv.total("r0:lckpt", "r0:precopy") == pytest.approx(130.0)


class TestReport:
    def test_table_rendering(self):
        t = Table("demo", ["name", "value"])
        t.add_row("alpha", 1.5)
        t.add_row("beta", 20000)
        t.add_note("a note")
        out = t.render()
        assert "demo" in out and "alpha" in out and "20,000" in out
        assert "* a note" in out

    def test_row_arity_checked(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_series_and_rendering(self):
        s1 = Series("pre")
        s2 = Series("nopre")
        for x in range(5):
            s1.add(x, x * 1.0)
            s2.add(x, x * 2.0)
        out = render_series("fig", [s1, s2], x_label="bw", y_label="time")
        assert "fig" in out and "pre" in out and "nopre" in out
        assert s1.xs == [0, 1, 2, 3, 4]
        assert s2.ys[-1] == 8.0

    def test_render_series_empty(self):
        assert "no data" in render_series("x", [Series("e")])

    def test_fmt(self):
        assert fmt(1234567) == "1,234,567"
        assert fmt(0.000001) == "1e-06"
        assert fmt(3.14159, precision=3) == "3.142"
        assert fmt(0) == "0"
        assert fmt(True) == "True"
        assert fmt("s") == "s"
