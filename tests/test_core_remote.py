"""Remote checkpointing: targets, the paced stream, rounds, commit
consistency, helper CPU accounting."""

import numpy as np
import pytest

from repro.alloc import NVAllocator
from repro.config import CheckpointConfig, PrecopyPolicy
from repro.core import LocalCheckpointer, RemoteHelper, RemoteTarget, make_standalone_context
from repro.errors import CheckpointError
from repro.net import Fabric
from repro.sim import Engine
from repro.units import MB


def make_pair(remote_precopy=True, remote_interval=30.0, local_interval=10.0, phantom=True):
    """Two nodes on one engine: node 0 runs ranks, node 1 is the buddy."""
    engine = Engine()
    src = make_standalone_context(name="n0", engine=engine)
    dst = make_standalone_context(name="n1", engine=engine)
    fabric = Fabric(engine, 2)
    alloc = NVAllocator("r0", src.nvmm, src.dram, phantom=phantom, clock=lambda: engine.now)
    cfg = CheckpointConfig(
        local_interval=local_interval,
        remote_interval=remote_interval,
        remote_precopy=remote_precopy,
        precopy=PrecopyPolicy(mode="dcpcp"),
    )
    helper = RemoteHelper(0, src, fabric, 1, dst, [alloc], cfg)
    ck = LocalCheckpointer(src, alloc, cfg.precopy)
    ck.on_complete.append(lambda stats: helper.notify_local_checkpoint("r0"))
    return engine, src, dst, fabric, alloc, helper, ck


class TestRemoteTarget:
    def test_stage_and_commit_roundtrip(self):
        engine, src, dst, fabric, alloc, helper, ck = make_pair(phantom=False)
        chunk = alloc.nvalloc("a", 4096)
        chunk.write(0, np.arange(512, dtype=np.float64))
        target = helper.targets["r0"]
        target.stage(chunk)
        target.commit()
        got = target.fetch("a").view(np.float64)
        assert np.array_equal(got, np.arange(512))

    def test_fetch_uncommitted_rejected(self):
        engine, src, dst, fabric, alloc, helper, ck = make_pair()
        alloc.nvalloc("a", 4096)
        with pytest.raises(CheckpointError):
            helper.targets["r0"].fetch("a")

    def test_two_version_flip(self):
        engine, src, dst, fabric, alloc, helper, ck = make_pair(phantom=False)
        chunk = alloc.nvalloc("a", 1024)
        target = helper.targets["r0"]
        chunk.write(0, np.full(1024, 1, dtype=np.uint8))
        target.stage(chunk)
        target.commit()
        assert target.committed["a"] == 0
        chunk.write(0, np.full(1024, 2, dtype=np.uint8))
        target.stage(chunk)
        target.commit()
        assert target.committed["a"] == 1
        assert (target.fetch("a") == 2).all()

    def test_uncommitted_stage_keeps_old_version_readable(self):
        engine, src, dst, fabric, alloc, helper, ck = make_pair(phantom=False)
        chunk = alloc.nvalloc("a", 1024)
        target = helper.targets["r0"]
        chunk.write(0, np.full(1024, 1, dtype=np.uint8))
        target.stage(chunk)
        target.commit()
        chunk.write(0, np.full(1024, 9, dtype=np.uint8))
        target.stage(chunk)  # staged, NOT committed
        assert (target.fetch("a") == 1).all()

    def test_reattach_from_metadata(self):
        engine, src, dst, fabric, alloc, helper, ck = make_pair(phantom=False)
        chunk = alloc.nvalloc("a", 1024)
        chunk.write(0, np.full(1024, 5, dtype=np.uint8))
        target = helper.targets["r0"]
        target.stage(chunk)
        target.commit()
        again = RemoteTarget.reattach("r0", dst)
        assert (again.fetch("a") == 5).all()

    def test_reattach_without_metadata_rejected(self):
        engine, src, dst, fabric, alloc, helper, ck = make_pair()
        with pytest.raises(CheckpointError):
            RemoteTarget.reattach("ghost", dst)

    def test_ensure_chunk_grows_regions(self):
        engine, src, dst, fabric, alloc, helper, ck = make_pair()
        chunk = alloc.nvalloc("a", 1024)
        target = helper.targets["r0"]
        target.ensure_chunk(chunk)
        alloc.nvrealloc("a", 2048)
        target.ensure_chunk(chunk)
        assert dst.nvmm.region(target.pid, "a#v0").nbytes == 2048


class TestNoPrecopyRounds:
    def test_round_moves_everything(self):
        engine, src, dst, fabric, alloc, helper, ck = make_pair(remote_precopy=False)
        alloc.nvalloc("a", MB(5))
        alloc.nvalloc("b", MB(3))
        engine.process(helper.run())
        engine.run(until=35.0)
        helper.stop()
        assert len(helper.history) == 1
        assert helper.history[0].bytes_moved == MB(8)
        assert helper.stream_bytes == 0

    def test_rounds_repeat_full_volume(self):
        engine, src, dst, fabric, alloc, helper, ck = make_pair(remote_precopy=False)
        alloc.nvalloc("a", MB(5))
        engine.process(helper.run())
        engine.run(until=65.0)
        helper.stop()
        assert helper.total_round_bytes == MB(10)  # 2 rounds x 5MB


class TestStream:
    def _drive(self, engine, ck, alloc, iterations, interval=10.0):
        def app():
            for _ in range(iterations):
                for c in alloc.persistent_chunks():
                    c.touch()
                yield engine.timeout(interval)
                yield from ck.checkpoint(blocking=False)

        return engine.process(app())

    def test_stream_idle_during_learning_interval(self):
        """§IV: no pre-copy before the first checkpoint round."""
        engine, src, dst, fabric, alloc, helper, ck = make_pair()
        alloc.nvalloc("a", MB(5))
        engine.process(helper.run())
        self._drive(engine, ck, alloc, 3)
        engine.run(until=29.0)  # just before the first round
        assert helper.stream_bytes == 0
        helper.stop()
        engine.run()

    def test_stream_sends_committed_chunks_after_learning(self):
        engine, src, dst, fabric, alloc, helper, ck = make_pair()
        alloc.nvalloc("a", MB(5))
        engine.process(helper.run())
        self._drive(engine, ck, alloc, 6)
        engine.run(until=59.0)  # into the second round interval
        helper.stop()
        engine.run()
        assert helper.stream_bytes > 0

    def test_stream_reduces_round_volume(self):
        engine, src, dst, fabric, alloc, helper, ck = make_pair()
        alloc.nvalloc("a", MB(5))
        engine.process(helper.run())
        self._drive(engine, ck, alloc, 9)
        engine.run(until=95.0)  # three rounds: learning + 2 steady
        helper.stop()
        engine.run()
        assert len(helper.history) >= 2
        # round 1 is the learning burst; steady-state rounds move less
        # than the stream
        steady_round_bytes = sum(s.bytes_moved for s in helper.history[1:])
        assert steady_round_bytes < helper.stream_bytes

    def test_uncommitted_chunks_never_streamed(self):
        engine, src, dst, fabric, alloc, helper, ck = make_pair()
        c = alloc.nvalloc("a", MB(5))
        c.touch()  # dirty but never locally committed
        engine.process(helper.run())
        engine.run(until=29.0)
        helper.stop()
        engine.run()
        assert helper.stream_bytes == 0

    def test_queue_coalescing(self):
        engine, src, dst, fabric, alloc, helper, ck = make_pair()
        c = alloc.nvalloc("a", MB(1))
        c.committed_version = 0
        helper.notify_local_checkpoint("r0")
        helper.notify_local_checkpoint("r0")
        assert len(helper._queue) == 1

    def test_enqueue_all(self):
        engine, src, dst, fabric, alloc, helper, ck = make_pair()
        a = alloc.nvalloc("a", MB(1))
        a.committed_version = 0
        a.dirty_remote = False
        helper.enqueue_all()
        assert a.dirty_remote
        assert len(helper._queue) == 1

    def test_pacing_spreads_transfers(self):
        """Stream throughput stays near pace_rate, far below line rate."""
        engine, src, dst, fabric, alloc, helper, ck = make_pair(
            remote_interval=30.0, local_interval=5.0
        )
        alloc.nvalloc("a", MB(20))
        engine.process(helper.run())
        self._drive(engine, ck, alloc, 5, interval=5.0)
        engine.run(until=29.0)
        helper.stop()
        engine.run()
        peak = fabric.egress_of(0).utilization.peak()
        # 1s-window average would be ~pace_rate; instantaneous peak is
        # one chunk at line rate, but total streamed stays bounded
        assert helper.stream_bytes <= MB(20) * 2 + MB(1)


class TestHelperCpu:
    def test_cpu_charged_per_byte(self):
        engine, src, dst, fabric, alloc, helper, ck = make_pair(remote_precopy=False)
        alloc.nvalloc("a", MB(10))
        engine.process(helper.run())
        engine.run(until=35.0)
        helper.stop()
        assert helper.helper_utilization(35.0) > 0

    def test_streamed_bytes_cost_more_cpu(self):
        from repro.core.remote import HELPER_CPU_PER_BYTE, TRACKING_CPU_PER_BYTE

        engine, src, dst, fabric, alloc, helper, ck = make_pair()
        helper._charge_cpu(MB(1), streamed=False)
        plain = src.cpu.busy_time(helper.owner)
        helper._charge_cpu(MB(1), streamed=True)
        streamed = src.cpu.busy_time(helper.owner) - plain
        assert streamed > plain
