"""Coordinated local checkpoints: dirty tracking, commit protocol,
baseline vs pre-copy behaviour, interval bookkeeping."""

import numpy as np
import pytest

from repro.alloc import NVAllocator
from repro.config import PrecopyPolicy
from repro.core import LocalCheckpointer, make_standalone_context
from repro.metrics.timeline import Timeline, LOCAL_CKPT
from repro.units import MB


def make_rig(mode="dcpcp", phantom=True, timeline=None):
    ctx = make_standalone_context(name="lc")
    alloc = NVAllocator("p0", ctx.nvmm, ctx.dram, phantom=phantom, clock=lambda: ctx.engine.now)
    ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(mode=mode), timeline=timeline)
    return ctx, alloc, ck


class TestCoordinatedStep:
    def test_first_checkpoint_copies_everything(self):
        ctx, alloc, ck = make_rig()
        alloc.nvalloc("a", MB(10))
        alloc.nvalloc("b", MB(20))
        stats = ck.checkpoint()
        assert stats.chunks_copied == 2
        assert stats.bytes_copied == MB(30)
        assert stats.duration > 0

    def test_clean_chunks_skipped_with_tracking(self):
        ctx, alloc, ck = make_rig(mode="dcpcp")
        a = alloc.nvalloc("a", MB(10))
        ck.checkpoint()
        stats = ck.checkpoint()  # nothing written since
        assert stats.chunks_copied == 0
        assert stats.chunks_skipped == 1

    def test_no_precopy_baseline_copies_everything_every_time(self):
        ctx, alloc, ck = make_rig(mode="none")
        alloc.nvalloc("a", MB(10))
        ck.checkpoint()
        stats = ck.checkpoint()
        assert stats.chunks_copied == 1  # no dirty tracking
        assert not ck.tracks_dirty

    def test_redirtied_chunk_recopied(self):
        ctx, alloc, ck = make_rig()
        a = alloc.nvalloc("a", MB(10))
        ck.checkpoint()
        a.touch()
        stats = ck.checkpoint()
        assert stats.chunks_copied == 1

    def test_commit_advances_versions(self):
        ctx, alloc, ck = make_rig()
        a = alloc.nvalloc("a", MB(1))
        ck.checkpoint()
        assert a.committed_version == 0
        a.touch()
        ck.checkpoint()
        assert a.committed_version == 1

    def test_nvchkptid_subset(self):
        ctx, alloc, ck = make_rig()
        a = alloc.nvalloc("a", MB(1))
        b = alloc.nvalloc("b", MB(1))
        stats = ck.checkpoint(only=[a])
        assert stats.chunks_copied == 1
        assert a.committed_version == 0
        assert b.committed_version == -1

    def test_flush_cost_included(self):
        ctx, alloc, ck = make_rig()
        alloc.nvalloc("a", MB(1))
        stats = ck.checkpoint()
        assert stats.flush_cost > 0

    def test_checkpoint_time_scales_with_bandwidth(self):
        from repro.units import GB_per_sec

        def run_at(bw):
            ctx = make_standalone_context(name="x", nvm_write_bandwidth=bw)
            alloc = NVAllocator("p0", ctx.nvmm, ctx.dram, phantom=True)
            ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(mode="none"))
            alloc.nvalloc("a", MB(100))
            return ck.checkpoint().duration

        assert run_at(GB_per_sec(0.5)) > 2 * run_at(GB_per_sec(2.0))

    def test_real_data_checkpoint_restores(self):
        ctx, alloc, ck = make_rig(phantom=False)
        a = alloc.nvalloc("a", 4096)
        data = np.arange(512, dtype=np.float64)
        a.write(0, data)
        ck.checkpoint()
        a.write(0, np.zeros(512))
        a.restore_from_committed()
        assert np.array_equal(a.view(np.float64), data)


class TestPrecopyIntegration:
    def test_precopied_chunks_skip_coordinated_step(self):
        ctx, alloc, ck = make_rig(mode="cpc")
        a = alloc.nvalloc("a", MB(10))
        ck.start_background()

        def app():
            a.touch()
            yield ctx.engine.timeout(10.0)  # precopy catches up
            stats = yield from ck.checkpoint(blocking=False)
            return stats

        proc = ctx.engine.process(app())
        ctx.engine.run(until=30.0)
        ck.stop_background()
        ctx.engine.run()
        assert proc.value.chunks_copied == 0
        assert proc.value.chunks_skipped == 1
        # at least one full pre-copy; a stale first attempt (the t=0
        # race between the engine starting and the app's write) may
        # add one more
        assert MB(10) <= ck.total_precopy_bytes <= MB(20)

    def test_total_bytes_accounting(self):
        ctx, alloc, ck = make_rig(mode="cpc")
        a = alloc.nvalloc("a", MB(10))
        ck.start_background()

        def app():
            for _ in range(2):
                a.touch()
                yield ctx.engine.timeout(10.0)
                yield from ck.checkpoint(blocking=False)
            ck.stop_background()

        ctx.engine.process(app())
        ctx.engine.run()
        assert ck.total_bytes_to_nvm == ck.total_precopy_bytes + ck.total_coordinated_bytes
        assert ck.total_bytes_to_nvm >= MB(20)

    def test_fault_overhead_reported(self):
        ctx, alloc, ck = make_rig(mode="cpc")
        a = alloc.nvalloc("a", MB(1))
        ck.start_background()

        def app():
            a.touch()
            yield ctx.engine.timeout(5.0)
            a.touch()  # faults: chunk was protected after precopy
            yield ctx.engine.timeout(1.0)
            ck.stop_background()

        ctx.engine.process(app())
        ctx.engine.run()
        assert ck.fault_overhead() == pytest.approx(ck.policy.fault_cost)


class TestIntervalBookkeeping:
    def test_threshold_fed_with_compute_only_interval(self):
        ctx, alloc, ck = make_rig(mode="dcpcp")
        alloc.nvalloc("a", MB(50))

        def app():
            yield from ck.checkpoint(blocking=False)
            yield ctx.engine.timeout(10.0)  # compute
            yield from ck.checkpoint(blocking=False)

        ctx.engine.process(app())
        ctx.engine.run()
        assert ck.threshold is not None
        # interval estimate ~ the 10 s compute, not compute + ckpt time
        est = ck.threshold.interval_estimate
        assert est == pytest.approx(10.0, abs=1.0)

    def test_history_and_counters(self):
        ctx, alloc, ck = make_rig()
        alloc.nvalloc("a", MB(1))
        ck.checkpoint()
        ck.checkpoint()
        assert ck.checkpoints_done == 2
        assert len(ck.history) == 2
        assert ck.total_checkpoint_time == pytest.approx(
            sum(s.duration for s in ck.history)
        )

    def test_on_complete_observers(self):
        ctx, alloc, ck = make_rig()
        alloc.nvalloc("a", MB(1))
        seen = []
        ck.on_complete.append(lambda stats: seen.append(stats.chunks_copied))
        ck.checkpoint()
        assert seen == [1]

    def test_timeline_records_phase(self):
        tl = Timeline()
        ctx, alloc, ck = make_rig(timeline=tl)
        alloc.nvalloc("a", MB(10))
        ck.checkpoint()
        assert tl.count(LOCAL_CKPT, actor="p0") == 1
        assert tl.total(LOCAL_CKPT) > 0
