"""Property tests for the fault-injection harness.

Two properties, over randomized seeded fault plans:

1. **Never torn, never silent.**  Whatever a random plan does — crash
   at any hit of any point, inject bit-rot into committed bytes — the
   restart either round-trips a consistent state (committed, legally
   in-flight, or buddy-recovered) or *loudly* reports an unrecoverable
   state.  Unrecoverable is only acceptable when no checkpoint ever
   committed (the crash predates the first ``local.commit.done``) or
   when bit-rot landed with no remote copy to fall back to.  A restored
   state whose bytes match no snapshot the application ever produced
   ("TORN") is never acceptable.

2. **The harness observes without perturbing.**  A fault plan that
   injects nothing must leave the simulation byte- and time-identical
   to a run with no injectors installed at all — the crash points are
   pure instrumentation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.harness import (
    CONSISTENT_OUTCOMES,
    OUTCOME_NO_CRASH,
    OUTCOME_UNRECOVERABLE,
    CrashConsistencyHarness,
)
from repro.faults.plan import FaultPlan
from repro.config import PrecopyPolicy

pytestmark = pytest.mark.faults


def _acceptable(result, plan) -> bool:
    """The ISSUE acceptance rule: consistent restart or an explicitly
    reported, legitimately unrecoverable state — never silent
    corruption."""
    if result.outcome in CONSISTENT_OUTCOMES or result.outcome == OUTCOME_NO_CRASH:
        return True
    if result.outcome != OUTCOME_UNRECOVERABLE:
        return False
    if "TORN" in result.detail:
        return False  # silent corruption surfaced: hard fail
    # unrecoverable is legitimate only if nothing ever committed, or
    # bit-rot destroyed the single copy (no buddy in this topology)
    never_committed = plan.hits.get("local.commit.done", 0) == 0
    return never_committed or bool(plan.bitrot_injected)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_random_fault_plan_never_returns_torn_data(seed):
    plan = FaultPlan.random(seed)
    result = CrashConsistencyHarness(seed=2024).run(plan)
    assert _acceptable(result, plan), (
        f"seed={seed} outcome={result.outcome!r} crash={result.crash_point!r} "
        f"detail={result.detail!r} hits={plan.hits} "
        f"bitrot={plan.bitrot_injected}"
    )
    # loud, not silent: any non-consistent ending carries an explanation
    if result.outcome == OUTCOME_UNRECOVERABLE:
        assert result.detail


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    with_remote=st.booleans(),
)
def test_random_fault_plan_with_remote_never_returns_torn_data(seed, with_remote):
    plan = FaultPlan.random(seed, allow_bitrot=not with_remote)
    harness = CrashConsistencyHarness(
        seed=2024,
        with_remote=with_remote,
        n_steps=6 if with_remote else 4,
    )
    result = harness.run(plan)
    assert _acceptable(result, plan), (
        f"seed={seed} remote={with_remote} outcome={result.outcome!r} "
        f"crash={result.crash_point!r} detail={result.detail!r} hits={plan.hits}"
    )


@settings(max_examples=5, deadline=None)
@given(
    workload_seed=st.integers(min_value=0, max_value=2**16),
    precopy=st.sampled_from([PrecopyPolicy.NONE, PrecopyPolicy.CPC]),
)
def test_empty_fault_plan_is_invisible(workload_seed, precopy):
    """A no-op plan must not perturb the run: identical final bytes and
    identical virtual end time vs. a run with no harness at all."""
    base = CrashConsistencyHarness(
        seed=workload_seed, precopy_mode=precopy
    ).run_baseline()
    plan = FaultPlan([])  # installs the injector machinery, fires nothing
    result = CrashConsistencyHarness(seed=workload_seed, precopy_mode=precopy).run(plan)
    assert result.outcome == OUTCOME_NO_CRASH
    assert result.final_state == base.final_state, "harness perturbed the data"
    assert result.end_time == base.end_time, "harness perturbed the schedule"


def test_same_plan_same_seed_is_reproducible():
    """Bitwise-deterministic campaigns: one (plan seed, workload seed)
    pair always produces the same crash, outcome, and restored bytes."""
    runs = []
    for _ in range(2):
        plan = FaultPlan.random(77)
        runs.append(CrashConsistencyHarness(seed=2024).run(plan))
    a, b = runs
    assert (a.outcome, a.crash_point, a.detail) == (b.outcome, b.crash_point, b.detail)
    assert a.restored == b.restored
