"""Property-based tests of the processor-sharing bandwidth resource:
byte conservation, completion-time sanity, and work-conservation
bounds under arbitrary flow mixes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import BandwidthResource, Engine

flows = st.lists(
    st.tuples(
        st.floats(1.0, 1e6),  # nbytes
        st.floats(0.0, 5.0),  # start delay
    ),
    min_size=1,
    max_size=12,
)


@given(flows=flows, capacity=st.floats(10.0, 1e6))
@settings(max_examples=100, deadline=None)
def test_byte_conservation(flows, capacity):
    engine = Engine()
    bw = BandwidthResource(engine, capacity)

    def xfer(nbytes, delay):
        if delay:
            yield engine.timeout(delay)
        yield bw.transfer(nbytes)

    for nbytes, delay in flows:
        engine.process(xfer(nbytes, delay))
    engine.run()
    assert bw.total_bytes == pytest.approx(sum(n for n, _ in flows), rel=1e-6)
    assert bw.active_flows == 0


@given(flows=flows, capacity=st.floats(10.0, 1e6))
@settings(max_examples=100, deadline=None)
def test_all_flows_complete_within_serial_bound(flows, capacity):
    """Processor sharing is work-conserving: the makespan never exceeds
    (last arrival) + (total bytes / capacity)."""
    engine = Engine()
    bw = BandwidthResource(engine, capacity)
    ends = []

    def xfer(nbytes, delay):
        if delay:
            yield engine.timeout(delay)
        yield bw.transfer(nbytes)
        ends.append(engine.now)

    for nbytes, delay in flows:
        engine.process(xfer(nbytes, delay))
    engine.run()
    assert len(ends) == len(flows)
    bound = max(d for _, d in flows) + sum(n for n, _ in flows) / capacity
    assert max(ends) <= bound * (1 + 1e-9) + 1e-6


@given(flows=flows, capacity=st.floats(10.0, 1e6))
@settings(max_examples=100, deadline=None)
def test_each_flow_at_least_solo_duration(flows, capacity):
    """No flow can beat running alone at full capacity."""
    engine = Engine()
    bw = BandwidthResource(engine, capacity)
    spans = []

    def xfer(nbytes, delay):
        if delay:
            yield engine.timeout(delay)
        t0 = engine.now
        yield bw.transfer(nbytes)
        spans.append((nbytes, engine.now - t0))

    for nbytes, delay in flows:
        engine.process(xfer(nbytes, delay))
    engine.run()
    for nbytes, span in spans:
        assert span >= nbytes / capacity - 1e-9


@given(
    flows=flows,
    capacity=st.floats(100.0, 1e6),
    cap_fraction=st.floats(0.05, 1.0),
)
@settings(max_examples=80, deadline=None)
def test_per_flow_cap_respected(flows, capacity, cap_fraction):
    engine = Engine()
    cap = capacity * cap_fraction
    bw = BandwidthResource(engine, capacity, per_flow_cap=cap)
    spans = []

    def xfer(nbytes, delay):
        if delay:
            yield engine.timeout(delay)
        t0 = engine.now
        yield bw.transfer(nbytes)
        spans.append((nbytes, engine.now - t0))

    for nbytes, delay in flows:
        engine.process(xfer(nbytes, delay))
    engine.run()
    for nbytes, span in spans:
        assert span >= nbytes / cap - 1e-9


@given(flows=flows)
@settings(max_examples=60, deadline=None)
def test_utilization_never_exceeds_capacity(flows):
    engine = Engine()
    bw = BandwidthResource(engine, 1000.0)

    def xfer(nbytes, delay):
        if delay:
            yield engine.timeout(delay)
        yield bw.transfer(nbytes)

    for nbytes, delay in flows:
        engine.process(xfer(nbytes, delay))
    engine.run()
    assert bw.utilization.peak() <= 1000.0 * (1 + 1e-9)


# -- vectorized vs scalar _advance equivalence -------------------------------

# 8..14 flows straddle _VECTOR_MIN_FLOWS = 8: as flows finish and the
# live count decays through the boundary, a single run exercises both
# the numpy path and the scalar loop
boundary_flows = st.lists(
    st.tuples(
        st.floats(1.0, 1e6),  # nbytes
        st.floats(0.0, 5.0),  # start delay
    ),
    min_size=8,
    max_size=14,
)


@given(flows=boundary_flows, capacity=st.floats(10.0, 1e6))
@settings(max_examples=100, deadline=None)
def test_vectorized_advance_matches_scalar_exactly(flows, capacity):
    """The numpy fast path in _advance must be bit-identical to the
    scalar loop — same completion times, same total_bytes, same
    per-tag byte accounting — across the n >= 8 switch-over."""

    def run_once(force_scalar):
        engine = Engine()
        bw = BandwidthResource(engine, capacity)
        if force_scalar:
            # instance attr shadows the class constant: every
            # _advance takes the scalar loop regardless of flow count
            bw._VECTOR_MIN_FLOWS = 10**9
        ends = {}

        def xfer(i, nbytes, delay):
            if delay:
                yield engine.timeout(delay)
            yield bw.transfer(nbytes, tag=f"t{i}")
            ends[i] = engine.now

        for i, (nbytes, delay) in enumerate(flows):
            engine.process(xfer(i, nbytes, delay))
        engine.run()
        return ends, bw.total_bytes, dict(bw.bytes_by_tag)

    vec_ends, vec_total, vec_tags = run_once(force_scalar=False)
    sc_ends, sc_total, sc_tags = run_once(force_scalar=True)
    # bit-identical, not approx: the vectorized path mirrors the scalar
    # arithmetic operation for operation, so any drift is a real bug
    assert vec_ends == sc_ends
    assert vec_total == sc_total
    assert vec_tags == sc_tags
