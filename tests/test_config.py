"""Configuration dataclasses: Table-I defaults, policy validation,
failure-rate arithmetic."""

import dataclasses

import pytest

from repro.config import (
    BandwidthModelConfig,
    CheckpointConfig,
    ClusterConfig,
    DRAM_CONFIG,
    FailureConfig,
    InterconnectConfig,
    NodeConfig,
    PCM_CONFIG,
    PrecopyPolicy,
)
from repro.units import GB_per_sec


class TestTableOneDefaults:
    """The device defaults must encode Table I of the paper."""

    def test_pcm_write_bandwidth_2gb(self):
        assert PCM_CONFIG.write_bandwidth == pytest.approx(GB_per_sec(2.0))

    def test_dram_write_bandwidth_8gb(self):
        assert DRAM_CONFIG.write_bandwidth == pytest.approx(GB_per_sec(8.0))

    def test_pcm_page_write_1us(self):
        assert PCM_CONFIG.page_write_latency == pytest.approx(1e-6)

    def test_pcm_page_read_50ns(self):
        assert PCM_CONFIG.page_read_latency == pytest.approx(50e-9)

    def test_dram_latency_in_20_50ns_band(self):
        assert 20e-9 <= DRAM_CONFIG.page_write_latency <= 50e-9

    def test_write_latency_ratio_about_10x(self):
        # "write latencies are 10x higher"
        ratio = PCM_CONFIG.page_write_latency / DRAM_CONFIG.page_write_latency
        assert ratio >= 10

    def test_bandwidth_ratio_4x(self):
        # "overall bandwidth is 4x lower compared to DRAM"
        assert DRAM_CONFIG.write_bandwidth / PCM_CONFIG.write_bandwidth == pytest.approx(4.0)

    def test_endurance_1e8_vs_1e16(self):
        assert PCM_CONFIG.write_endurance == pytest.approx(1e8)
        assert DRAM_CONFIG.write_endurance == pytest.approx(1e16)

    def test_write_energy_40x(self):
        ratio = PCM_CONFIG.write_energy_per_bit / DRAM_CONFIG.write_energy_per_bit
        assert ratio == pytest.approx(40.0)

    def test_pcm_is_persistent_dram_is_not(self):
        assert PCM_CONFIG.persistent
        assert not DRAM_CONFIG.persistent

    def test_scaled_overrides_only_bandwidth(self):
        half = PCM_CONFIG.scaled(GB_per_sec(1.0))
        assert half.write_bandwidth == pytest.approx(GB_per_sec(1.0))
        assert half.page_write_latency == PCM_CONFIG.page_write_latency
        assert half.name == PCM_CONFIG.name


class TestPrecopyPolicy:
    def test_default_mode_is_dcpcp(self):
        assert PrecopyPolicy().mode == PrecopyPolicy.DCPCP

    @pytest.mark.parametrize("mode", ["none", "cpc", "dcpc", "dcpcp"])
    def test_all_modes_construct(self, mode):
        assert PrecopyPolicy(mode=mode).mode == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            PrecopyPolicy(mode="bogus")

    def test_fault_cost_in_paper_band(self):
        # 6-12 usec per protection fault
        assert 6e-6 <= PrecopyPolicy().fault_cost <= 12e-6

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PrecopyPolicy().mode = "cpc"  # type: ignore[misc]


class TestClusterConfig:
    def test_paper_testbed_defaults(self):
        cfg = ClusterConfig()
        assert cfg.nodes == 8
        assert cfg.node.cores == 12
        assert cfg.total_cores == 96

    def test_interconnect_40gbps(self):
        ic = InterconnectConfig()
        assert ic.link_bandwidth == pytest.approx(5e9)
        assert ic.effective_bandwidth < ic.link_bandwidth


class TestFailureConfig:
    def test_soft_fraction_from_rates(self):
        fc = FailureConfig(mtbf_local=100.0, mtbf_remote=300.0)
        # lambda_soft = 1/100, lambda_hard = 1/300 -> soft = 0.75
        assert fc.soft_fraction == pytest.approx(0.75)

    def test_from_rates_default_asciq_split(self):
        fc = FailureConfig.from_rates(lambda_total=0.01)
        assert fc.soft_fraction == pytest.approx(0.64)
        lam = 1.0 / fc.mtbf_local + 1.0 / fc.mtbf_remote
        assert lam == pytest.approx(0.01)

    def test_from_rates_validates_fraction(self):
        with pytest.raises(ValueError):
            FailureConfig.from_rates(0.01, soft_fraction=0.0)
        with pytest.raises(ValueError):
            FailureConfig.from_rates(0.01, soft_fraction=1.0)

    def test_from_rates_validates_rate(self):
        with pytest.raises(ValueError):
            FailureConfig.from_rates(0.0)


class TestBandwidthModelConfig:
    def test_single_core_fraction_reasonable(self):
        cfg = BandwidthModelConfig()
        assert 0.0 < cfg.single_core_fraction <= 1.0

    def test_checkpoint_config_defaults(self):
        cc = CheckpointConfig()
        assert cc.local_interval == pytest.approx(40.0)
        assert cc.remote_interval > cc.local_interval
        assert cc.two_versions and cc.checksums
