"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import (
    BandwidthModelConfig,
    CheckpointConfig,
    ClusterConfig,
    DRAM_CONFIG,
    NodeConfig,
    PCM_CONFIG,
    PrecopyPolicy,
)
from repro.core.context import make_standalone_context
from repro.alloc.nvmalloc import NVAllocator
from repro.memory.device import MemoryDevice
from repro.memory.nvmm import NVMKernelManager
from repro.memory.persistence import InMemoryStore
from repro.sim.engine import Engine
from repro.units import GB_per_sec, MB


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def store():
    return InMemoryStore()


@pytest.fixture
def nvmm(store):
    return NVMKernelManager(store=store)


@pytest.fixture
def dram():
    return MemoryDevice(DRAM_CONFIG)


@pytest.fixture
def ctx():
    """A standalone single-node context with its own engine."""
    return make_standalone_context(name="testnode")


@pytest.fixture
def allocator(ctx):
    """A real-data allocator bound to the standalone context."""
    return NVAllocator(
        "p0", ctx.nvmm, ctx.dram, clock=lambda: ctx.engine.now
    )


@pytest.fixture
def phantom_allocator(ctx):
    """A phantom (size-only) allocator for simulation-style tests."""
    return NVAllocator(
        "p0", ctx.nvmm, ctx.dram, phantom=True, clock=lambda: ctx.engine.now
    )


def run_proc(engine, gen, until=None):
    """Run a generator process to completion and return its value."""
    proc = engine.process(gen)
    engine.run(until=until)
    assert proc.triggered, "process did not finish"
    return proc.value


@pytest.fixture
def assert_replay_matches():
    """The differential-replay oracle as a reusable assertion: capture
    a cell (or take an existing capture), replay it faithfully, and
    fail with the full divergence report if any byte diverges."""
    from repro.replay import CapturedRun, capture_cell, compare_to_run

    def check(config_or_capture) -> CapturedRun:
        cap = (
            config_or_capture
            if isinstance(config_or_capture, CapturedRun)
            else capture_cell(config_or_capture)
        )
        report = compare_to_run(cap.engine().faithful(), cap.result)
        assert report.matches, report.describe()
        return cap

    return check
