"""Page-vs-chunk tracking granularity and the experiment CLI."""

import json

import pytest

from repro.config import PrecopyPolicy
from repro.tools.experiment import build_parser, main, result_to_dict, run_experiment
from repro.units import PAGE_SIZE, MB


class TestGranularity:
    def test_policy_validates_granularity(self):
        assert PrecopyPolicy(granularity="page").granularity == "page"
        with pytest.raises(ValueError):
            PrecopyPolicy(granularity="byte")

    def test_chunk_level_single_fault(self):
        from tests.test_alloc_chunk import make_chunk

        chunk, _ = make_chunk(nbytes=8 * PAGE_SIZE)
        chunk.mark_precopied("local")
        assert chunk.touch() == 1
        assert chunk.fault_count == 1

    def test_page_level_fault_per_page(self):
        from tests.test_alloc_chunk import make_chunk

        chunk, _ = make_chunk(nbytes=8 * PAGE_SIZE)
        chunk.page_granular_protection = True
        chunk.mark_precopied("local")
        assert chunk.touch() == 8  # one fault per page of the full write
        assert chunk.fault_count == 8

    def test_page_level_partial_write(self):
        from tests.test_alloc_chunk import make_chunk

        chunk, _ = make_chunk(nbytes=8 * PAGE_SIZE)
        chunk.page_granular_protection = True
        chunk.mark_precopied("local")
        assert chunk.touch(2 * PAGE_SIZE) == 2

    def test_paper_arithmetic_3s_per_gb(self):
        """§IV: 6-12 us per fault -> ~seconds per rewritten GB."""
        from repro.units import GB, pages_of

        faults = pages_of(GB(1))
        cost = faults * PrecopyPolicy().fault_cost
        assert 1.5 <= cost <= 3.2  # '3 sec for 1 GB'

    def test_checkpointer_wires_granularity(self):
        from repro.alloc import NVAllocator
        from repro.core import LocalCheckpointer, make_standalone_context

        ctx = make_standalone_context(name="g")
        alloc = NVAllocator("p0", ctx.nvmm, ctx.dram, phantom=True)
        alloc.nvalloc("a", MB(1))
        ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(granularity="page"))
        ck.start_background()
        assert alloc.chunk("a").page_granular_protection
        ck.stop_background()


class TestCli:
    def _args(self, *extra):
        return build_parser().parse_args(
            [
                "--app", "synthetic", "--nodes", "2", "--ranks-per-node", "2",
                "--iterations", "2", "--local-interval", "10",
                "--remote-interval", "30", "--checkpoint-mb", "40",
                "--chunk-mb", "10", "--comm-mb", "10", *extra,
            ]
        )

    def test_run_experiment_returns_result(self):
        res = run_experiment(self._args())
        assert res.iterations == 2
        assert res.n_ranks == 4
        assert res.total_time > 0

    def test_result_to_dict_is_json_serializable(self):
        res = run_experiment(self._args())
        payload = json.dumps(result_to_dict(res))
        back = json.loads(payload)
        assert back["iterations"] == 2
        assert back["local"]["checkpoints"] == 8

    def test_main_writes_json(self, tmp_path, capsys):
        out = tmp_path / "r.json"
        code = main(
            [
                "--app", "synthetic", "--nodes", "2", "--ranks-per-node", "2",
                "--iterations", "2", "--local-interval", "10",
                "--remote-interval", "30", "--checkpoint-mb", "40",
                "--chunk-mb", "10", "--no-remote", "--json", str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["remote"]["rounds"] == 0
        assert "execution time" in capsys.readouterr().out

    def test_main_timeline_flag(self, capsys):
        code = main(
            [
                "--app", "synthetic", "--nodes", "2", "--ranks-per-node", "2",
                "--iterations", "2", "--local-interval", "10",
                "--remote-interval", "30", "--checkpoint-mb", "40",
                "--chunk-mb", "10", "--no-remote", "--timeline",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "C=compute" in out

    def test_failure_injection_flags(self):
        res = run_experiment(self._args("--mtbf-local", "40", "--seed", "13"))
        assert res.iterations == 2
        assert res.soft_failures >= 1

    def test_no_precopy_mode(self):
        res = run_experiment(self._args("--mode", "none", "--no-remote-precopy"))
        assert res.policy_mode == "none"
        assert not res.remote_precopy

    def test_page_granularity_flag_costs_faults(self):
        chunk_arm = run_experiment(self._args("--granularity", "chunk"))
        page_arm = run_experiment(self._args("--granularity", "page"))
        assert page_arm.fault_time_total > chunk_arm.fault_time_total
