"""Page tables: protection bits, nvdirty bits, fault accounting."""

import pytest

from repro.errors import InvalidAddress
from repro.memory import PageTable
from repro.units import PAGE_SIZE


@pytest.fixture
def table():
    return PageTable(10 * PAGE_SIZE)


class TestConstruction:
    def test_page_count(self, table):
        assert table.n_pages == 10

    def test_partial_last_page(self):
        t = PageTable(PAGE_SIZE + 1)
        assert t.n_pages == 2

    def test_empty_region(self):
        t = PageTable(0)
        assert t.n_pages == 0
        assert not t.any_protected()

    def test_validation(self):
        with pytest.raises(ValueError):
            PageTable(-1)
        with pytest.raises(ValueError):
            PageTable(100, page_size=0)


class TestProtection:
    def test_protect_all_and_check_range(self, table):
        table.protect_all()
        assert table.is_protected(0)
        assert table.is_protected(5 * PAGE_SIZE, PAGE_SIZE)
        assert table.any_protected()

    def test_unprotect_all(self, table):
        table.protect_all()
        table.unprotect_all()
        assert not table.any_protected()

    def test_out_of_bounds_access(self, table):
        with pytest.raises(InvalidAddress):
            table.is_protected(10 * PAGE_SIZE, 1)
        with pytest.raises(InvalidAddress):
            table.is_protected(-1)

    def test_fault_counting(self, table):
        table.record_fault()
        table.record_fault()
        assert table.fault_count == 2


class TestNvDirty:
    def test_mark_and_collect(self, table):
        table.mark_nvdirty(0, 1)  # page 0
        table.mark_nvdirty(3 * PAGE_SIZE, PAGE_SIZE)  # page 3
        assert table.collect_nvdirty(clear=False) == [0, 3]

    def test_range_spanning_pages(self, table):
        table.mark_nvdirty(PAGE_SIZE - 1, 2)  # crosses page 0->1
        assert table.collect_nvdirty() == [0, 1]

    def test_collect_clears_by_default(self, table):
        table.mark_nvdirty(0, PAGE_SIZE)
        assert table.collect_nvdirty() == [0]
        assert table.collect_nvdirty() == []

    def test_mark_all(self, table):
        table.mark_all_nvdirty()
        assert len(table.collect_nvdirty()) == 10

    def test_nvdirty_bytes_full_pages(self, table):
        table.mark_nvdirty(0, 2 * PAGE_SIZE)
        assert table.nvdirty_bytes() == 2 * PAGE_SIZE

    def test_nvdirty_bytes_partial_last_page(self):
        t = PageTable(PAGE_SIZE + 100)
        t.mark_all_nvdirty()
        assert t.nvdirty_bytes() == PAGE_SIZE + 100

    def test_nvdirty_bytes_zero(self, table):
        assert table.nvdirty_bytes() == 0

    def test_zero_length_mark_is_noop(self, table):
        table.mark_nvdirty(0, 0)
        assert table.collect_nvdirty() == []


class TestResize:
    def test_grow_preserves_state(self, table):
        table.protect_all()
        table.mark_nvdirty(0, PAGE_SIZE)
        table.resize(20 * PAGE_SIZE)
        assert table.n_pages == 20
        assert table.is_protected(0)
        assert not table.is_protected(15 * PAGE_SIZE)  # new pages clean
        assert table.collect_nvdirty() == [0]

    def test_shrink_truncates(self, table):
        table.mark_nvdirty(9 * PAGE_SIZE, PAGE_SIZE)
        table.resize(5 * PAGE_SIZE)
        assert table.n_pages == 5
        assert table.collect_nvdirty() == []


class TestNvDirtyExtents:
    def test_empty(self, table):
        assert table.nvdirty_extents() == []

    def test_adjacent_pages_coalesce(self, table):
        table.mark_nvdirty(PAGE_SIZE, 3 * PAGE_SIZE)
        assert table.nvdirty_extents() == [(PAGE_SIZE, 3 * PAGE_SIZE)]

    def test_gap_splits_runs(self, table):
        table.mark_nvdirty(0, PAGE_SIZE)
        table.mark_nvdirty(5 * PAGE_SIZE, PAGE_SIZE)
        assert table.nvdirty_extents() == [
            (0, PAGE_SIZE),
            (5 * PAGE_SIZE, PAGE_SIZE),
        ]

    def test_final_extent_clipped_to_region(self):
        t = PageTable(PAGE_SIZE + 100)
        t.mark_all_nvdirty()
        assert t.nvdirty_extents() == [(0, PAGE_SIZE + 100)]

    def test_clear_flag_resets(self, table):
        table.mark_nvdirty(0, PAGE_SIZE)
        assert table.nvdirty_extents(clear=True) == [(0, PAGE_SIZE)]
        assert table.nvdirty_extents() == []

    def test_clear_range_is_exact(self, table):
        table.mark_nvdirty(0, 4 * PAGE_SIZE)
        table.clear_nvdirty_range(PAGE_SIZE, 2 * PAGE_SIZE)
        assert table.nvdirty_extents() == [
            (0, PAGE_SIZE),
            (3 * PAGE_SIZE, PAGE_SIZE),
        ]


class TestStalePageMap:
    @pytest.fixture
    def pmap(self):
        from repro.memory import StalePageMap

        return StalePageMap(10 * PAGE_SIZE, 2)

    def test_fresh_slots_start_fully_stale(self, pmap):
        assert pmap.n_slots == 2
        for slot in (0, 1):
            assert pmap.stale_bytes(slot) == 10 * PAGE_SIZE

    def test_mark_lands_in_every_slot(self, pmap):
        pmap.clear_all(0)
        pmap.clear_all(1)
        pmap.mark(PAGE_SIZE, PAGE_SIZE)
        assert pmap.extents(0) == [(PAGE_SIZE, PAGE_SIZE)]
        assert pmap.extents(1) == [(PAGE_SIZE, PAGE_SIZE)]

    def test_clear_is_per_slot(self, pmap):
        pmap.clear_all(0)
        pmap.mark(0, PAGE_SIZE)
        pmap.clear_extents(0, pmap.extents(0))
        assert pmap.extents(0) == []
        assert pmap.stale_bytes(1) == 10 * PAGE_SIZE  # untouched

    def test_ensure_slots_grows_fully_stale(self, pmap):
        pmap.clear_all(0)
        pmap.ensure_slots(3)
        assert pmap.n_slots == 3
        assert pmap.stale_bytes(2) == 10 * PAGE_SIZE
        pmap.ensure_slots(2)  # never shrinks
        assert pmap.n_slots == 3

    def test_resize_marks_everything_stale(self, pmap):
        pmap.clear_all(0)
        pmap.clear_all(1)
        pmap.resize(4 * PAGE_SIZE)
        assert pmap.nbytes == 4 * PAGE_SIZE
        for slot in (0, 1):
            assert pmap.stale_bytes(slot) == 4 * PAGE_SIZE

    def test_needs_at_least_one_slot(self):
        from repro.memory import StalePageMap

        with pytest.raises(ValueError):
            StalePageMap(PAGE_SIZE, 0)
