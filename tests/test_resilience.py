"""The resilience layer: retry/backoff transports, buddy health
monitoring, the live buddy directory, degraded-mode control, background
re-sync, transient failure injection, and AllReplicasLost escalation."""

import numpy as np
import pytest

from repro.alloc import NVAllocator
from repro.cluster import FailureEvent, FailureInjector, ScriptedInjector
from repro.config import (
    CheckpointConfig,
    FailureConfig,
    PrecopyPolicy,
    ResilienceConfig,
)
from repro.core import (
    LocalCheckpointer,
    RemoteHelper,
    RestartManager,
    make_standalone_context,
)
from repro.errors import (
    AllReplicasLost,
    NoCheckpointAvailable,
    TransferFailed,
)
from repro.metrics import timeline as tl
from repro.metrics.timeline import Timeline
from repro.models.notation import ModelParams
from repro.net import Fabric
from repro.net.rdma import rdma_put
from repro.net.topology import Topology
from repro.resilience import (
    BuddyDirectory,
    DegradedModeController,
    HealthMonitor,
    ResilientTransport,
    ResyncTask,
    RetryPolicy,
    TransferStats,
    degraded_local_interval,
    resilient_put,
)
from repro.sim import Engine
from repro.sim.rng import RngStreams
from repro.units import MB, GB_per_sec


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=2.0, max_delay=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_backoff_grows_and_caps(self):
        p = RetryPolicy(base_delay=1.0, max_delay=5.0, backoff=2.0, jitter=0.0)
        rng = RngStreams(0)
        delays = [p.backoff_delay(a, rng, "s") for a in range(5)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_is_deterministic_per_stream(self):
        p = RetryPolicy(base_delay=1.0, jitter=0.5)
        a = [p.backoff_delay(0, RngStreams(9), "x") for _ in range(1)]
        b = [p.backoff_delay(0, RngStreams(9), "x") for _ in range(1)]
        assert a == b
        # jitter stays within +/- 50%
        d = p.backoff_delay(0, RngStreams(1), "x")
        assert 0.5 <= d <= 1.5

    def test_from_config(self):
        cfg = ResilienceConfig(retry_max_attempts=3, transfer_timeout=7.0)
        p = RetryPolicy.from_config(cfg)
        assert p.max_attempts == 3
        assert p.timeout == 7.0
        assert p.deadline == cfg.transfer_deadline


# ---------------------------------------------------------------------------
# resilient_put / ResilientTransport
# ---------------------------------------------------------------------------


def run_proc(engine, gen):
    p = engine.process(gen)
    engine.run()
    return p


class TestResilientTransfers:
    def test_success_path_matches_plain_rdma_exactly(self):
        done = {}

        engine_a = Engine()
        fabric_a = Fabric(engine_a, 2)

        def plain():
            yield rdma_put(fabric_a, 0, 1, MB(64), tag="r0:rckpt")
            done["plain"] = engine_a.now

        run_proc(engine_a, plain())

        engine_b = Engine()
        fabric_b = Fabric(engine_b, 2)
        rng = RngStreams(7)

        def resilient():
            yield from resilient_put(
                fabric_b, 0, 1, MB(64), tag="r0:rckpt",
                policy=RetryPolicy(), rng=rng,
            )
            done["res"] = engine_b.now

        run_proc(engine_b, resilient())
        assert done["res"] == done["plain"]
        # the success path consumes no RNG draws
        fresh = RngStreams(7)
        assert (
            rng.stream("resilience.backoff").random()
            == fresh.stream("resilience.backoff").random()
        )

    def test_retries_through_an_outage(self):
        engine = Engine()
        fabric = Fabric(engine, 2)
        rng = RngStreams(3)
        stats = TransferStats()
        fabric.begin_outage(1)
        engine.call_at(5.0, lambda: fabric.end_outage(1))
        got = {}

        def proc():
            got["elapsed"] = yield from resilient_put(
                fabric, 0, 1, MB(8), tag="r0:rckpt",
                policy=RetryPolicy(base_delay=0.5, max_delay=4.0),
                rng=rng, stats=stats,
            )

        p = run_proc(engine, proc())
        assert p.ok
        assert stats.delivered == 1
        assert stats.cancelled >= 1
        assert stats.retries >= 1
        # the payload could only land after the link healed
        assert got["elapsed"] >= 5.0

    def test_transfer_failed_after_attempt_exhaustion(self):
        engine = Engine()
        fabric = Fabric(engine, 2)
        fabric.begin_outage(1)  # never heals
        stats = TransferStats()

        def proc():
            yield from resilient_put(
                fabric, 0, 1, MB(8), tag="r0:rckpt",
                policy=RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0),
                rng=RngStreams(1), stats=stats,
            )

        p = run_proc(engine, proc())
        assert not p.ok
        exc = p.exception
        assert isinstance(exc, TransferFailed)
        assert exc.attempts == 3
        assert exc.src == 0 and exc.dst == 1
        assert stats.abandoned == 1

    def test_stall_timeout_cancels_and_reissues(self):
        engine = Engine()
        fabric = Fabric(engine, 2)
        stats = TransferStats()
        # a ~1 s transfer against a 0.2 s per-attempt stall timeout
        nbytes = fabric.config.effective_bandwidth * 1.0

        def proc():
            yield from resilient_put(
                fabric, 0, 1, nbytes, tag="r0:rckpt",
                policy=RetryPolicy(
                    max_attempts=2, base_delay=0.05, jitter=0.0, timeout=0.2
                ),
                rng=RngStreams(1), stats=stats,
            )

        p = run_proc(engine, proc())
        assert not p.ok
        assert isinstance(p.exception, TransferFailed)
        assert stats.timeouts == 2
        # the cancelled attempts left no live flows behind
        assert fabric.links[0].egress.active_flows == 0
        assert fabric.links[1].ingress.active_flows == 0

    def test_transport_is_deterministic(self):
        def one_run():
            engine = Engine()
            fabric = Fabric(engine, 2)
            transport = ResilientTransport(
                0, RngStreams(11), RetryPolicy(base_delay=0.3)
            )
            fabric.begin_outage(1)
            engine.call_at(3.0, lambda: fabric.end_outage(1))
            times = []

            def proc():
                yield from transport.put(fabric, 0, 1, MB(4), tag="r0:rckpt")
                times.append(engine.now)

            run_proc(engine, proc())
            return times[0], transport.stats.retries

        assert one_run() == one_run()


# ---------------------------------------------------------------------------
# HealthMonitor
# ---------------------------------------------------------------------------


class TestHealthMonitor:
    def test_detects_outage_and_recovery(self):
        engine = Engine()
        fabric = Fabric(engine, 2)
        downs, ups = [], []
        mon = HealthMonitor(
            0, 1, fabric, interval=1.0, timeout=0.5, miss_threshold=2,
            on_down=downs.append, on_up=ups.append,
        )
        engine.process(mon.run())
        engine.call_at(3.2, lambda: fabric.begin_outage(1))
        engine.call_at(8.2, lambda: fabric.end_outage(1))
        engine.call_at(15.0, mon.stop)
        engine.run(until=20.0)
        assert downs == [1]
        assert ups == [1]
        assert mon.stats.detections == 1
        assert mon.stats.recoveries == 1
        assert mon.stats.missed >= 2
        assert mon.buddy_healthy

    def test_single_miss_below_threshold_is_tolerated(self):
        engine = Engine()
        fabric = Fabric(engine, 2)
        downs = []
        mon = HealthMonitor(
            0, 1, fabric, interval=1.0, timeout=0.5, miss_threshold=3,
            on_down=downs.append,
        )
        engine.process(mon.run())
        # a flap shorter than miss_threshold consecutive beats
        engine.call_at(0.9, lambda: fabric.begin_outage(1))
        engine.call_at(2.5, lambda: fabric.end_outage(1))
        engine.call_at(6.0, mon.stop)
        engine.run(until=10.0)
        assert downs == []
        assert mon.buddy_healthy

    def test_retarget_resets_state(self):
        engine = Engine()
        fabric = Fabric(engine, 3)
        mon = HealthMonitor(0, 1, fabric, miss_threshold=1)
        mon.buddy_healthy = False
        mon.misses = 4
        mon.retarget(2)
        assert mon.buddy_id == 2
        assert mon.buddy_healthy
        assert mon.misses == 0

    def test_retarget_mid_beat_discards_stale_outcome(self):
        # a beat in flight to the OLD buddy must not apply its outcome
        # to the new pairing: without the retarget epoch, the beat
        # launched at t=1.0 (stalling past its 0.5 s timeout thanks to
        # the oversized payload) would count its t=1.5 miss — and with
        # miss_threshold=1, fire on_down — against freshly-healthy
        # node 2, retargeted to at t=1.2 while the probe was in flight
        engine = Engine()
        fabric = Fabric(engine, 3)
        downs = []
        mon = HealthMonitor(
            0, 1, fabric, interval=1.0, timeout=0.5, miss_threshold=1,
            payload_bytes=10**9, on_down=downs.append,
        )
        engine.process(mon.run())
        engine.call_at(1.2, lambda: mon.retarget(2))  # mid-beat
        engine.call_at(2.0, mon.stop)
        engine.run(until=6.0)
        assert downs == []
        assert mon.buddy_id == 2
        assert mon.buddy_healthy
        assert mon.misses == 0
        assert mon.stats.missed == 0  # the stale beat vanished entirely

    def test_validation(self):
        engine = Engine()
        fabric = Fabric(engine, 2)
        with pytest.raises(ValueError):
            HealthMonitor(0, 1, fabric, miss_threshold=0)


# ---------------------------------------------------------------------------
# BuddyDirectory
# ---------------------------------------------------------------------------


class TestBuddyDirectory:
    def test_initial_pairing_follows_topology(self):
        topo = Topology(4, 2)
        d = BuddyDirectory(topo)
        assert [d.buddy_of(n) for n in range(4)] == [topo.buddy_of(n) for n in range(4)]

    def test_repair_prefers_healthy_cross_rack(self):
        # racks are striped: rack0={0,2}, rack1={1,3}; 0's buddy is 1
        d = BuddyDirectory(Topology(4, 2))
        d.mark_failed(1)
        new = d.repair(0)
        assert new == 3  # healthy, cross-rack (node 2 shares 0's rack)
        assert d.buddy_of(0) == 3
        assert d.repairs == [(0, 1, 3)]

    def test_repair_never_self_and_never_failed(self):
        d = BuddyDirectory(Topology(4, 2))
        d.mark_failed(1)
        d.mark_failed(3)
        new = d.repair(0)
        assert new == 2  # only healthy candidate left, same rack
        assert new != 0

    def test_repair_keeps_a_healthy_buddy(self):
        d = BuddyDirectory(Topology(4, 2))
        assert d.repair(0) == d.buddy_of(0)
        assert d.repairs == []  # no re-pairing happened

    def test_repair_returns_none_without_candidates(self):
        d = BuddyDirectory(Topology(2, 1))
        d.mark_failed(1)
        assert d.repair(0) is None

    def test_recovered_node_is_a_candidate_again(self):
        d = BuddyDirectory(Topology(2, 1))
        d.mark_failed(1)
        assert d.repair(0) is None
        d.mark_recovered(1)
        assert d.repair(0) == 1

    def test_orphans_of(self):
        d = BuddyDirectory(Topology(4, 2))
        assert d.orphans_of(1) == [0]
        d.mark_failed(1)
        d.repair(0)
        assert d.orphans_of(1) == []

    def test_capacity_gate_filters_candidates(self):
        d = BuddyDirectory(Topology(4, 2))
        d.mark_failed(1)
        # node 3 (the preferred cross-rack candidate) has no room
        assert d.repair(0, fits=lambda o, c: c != 3) == 2
        # nobody has room: defer (None), pairing unchanged
        d2 = BuddyDirectory(Topology(4, 2))
        d2.mark_failed(1)
        assert d2.repair(0, fits=lambda o, c: False) is None
        assert d2.buddy_of(0) == 1

    def test_load_spreading(self):
        d = BuddyDirectory(Topology(8, 2))
        d.mark_failed(2)
        assert d.repair(1) == 4  # nearest healthy cross-rack node
        d.mark_failed(6)
        # node 4 now serves two sources; node 0 is equally cross-rack
        # but lighter, so the next orphan spreads onto it
        assert d.repair(5) == 0


# ---------------------------------------------------------------------------
# Degraded mode
# ---------------------------------------------------------------------------


def model_params(**kw):
    defaults = dict(
        compute_time=4000.0,
        checkpoint_bytes=MB(1000),
        nvm_bw_per_core=GB_per_sec(1.0),
        remote_bw=MB(400),
        local_interval=60.0,
        remote_interval=180.0,
        mtbf_local=900.0,
        mtbf_remote=1800.0,
    )
    defaults.update(kw)
    return ModelParams(**defaults)


class TestDegradedInterval:
    def test_shorter_than_normal_under_failure_pressure(self):
        params = model_params()
        d = degraded_local_interval(params, min_interval=5.0)
        assert 5.0 <= d <= params.local_interval
        # both failure rates now hit the local level: checkpoint more
        assert d < params.local_interval

    def test_clamped_to_min_interval(self):
        params = model_params(mtbf_local=20.0, mtbf_remote=20.0)
        d = degraded_local_interval(params, min_interval=8.0)
        assert d >= 8.0

    def test_never_exceeds_normal_interval(self):
        params = model_params(mtbf_local=1e9, mtbf_remote=1e9, local_interval=30.0)
        d = degraded_local_interval(params, min_interval=5.0)
        assert d <= 30.0


class TestDegradedModeController:
    def make(self, timeline=None):
        clock = {"now": 0.0}
        applied = []
        ctrl = DegradedModeController(
            3,
            clock=lambda: clock["now"],
            normal_interval=40.0,
            solve_interval=lambda: 10.0,
            timeline=timeline,
            on_enter=lambda i: applied.append(("enter", i)),
            on_exit=lambda i: applied.append(("exit", i)),
        )
        return ctrl, clock, applied

    def test_enter_exit_span_and_hooks(self):
        timeline = Timeline()
        ctrl, clock, applied = self.make(timeline)
        assert ctrl.enter("buddy-failed")
        clock["now"] = 25.0
        assert ctrl.exit()
        assert ctrl.degraded_time == 25.0
        assert ctrl.entries == 1
        assert applied == [("enter", 10.0), ("exit", 40.0)]
        assert timeline.total(tl.DEGRADED, "n3") == 25.0
        span = ctrl.spans[0]
        assert span.reason == "buddy-failed"
        assert span.interval == 10.0

    def test_idempotent_transitions(self):
        ctrl, clock, applied = self.make()
        assert ctrl.enter("a")
        assert not ctrl.enter("b")  # already degraded
        clock["now"] = 5.0
        assert ctrl.exit()
        assert not ctrl.exit()
        assert ctrl.entries == 1
        assert len(applied) == 2

    def test_finalize_closes_open_span(self):
        ctrl, clock, applied = self.make()
        ctrl.enter("x")
        clock["now"] = 12.0
        ctrl.finalize()
        assert not ctrl.active
        assert ctrl.degraded_time == 12.0
        ctrl.finalize()  # no-op when closed
        assert ctrl.entries == 1


# ---------------------------------------------------------------------------
# ResyncTask
# ---------------------------------------------------------------------------


def make_helper_world():
    engine = Engine()
    src = make_standalone_context(name="n0", engine=engine)
    dst = make_standalone_context(name="n1", engine=engine)
    fabric = Fabric(engine, 2)
    alloc = NVAllocator("r0", src.nvmm, src.dram)
    ck = LocalCheckpointer(src, alloc, PrecopyPolicy(mode="none"))
    helper = RemoteHelper(
        0, src, fabric, 1, dst, [alloc], CheckpointConfig(remote_precopy=False)
    )
    return engine, src, dst, fabric, alloc, ck, helper


class TestResyncTask:
    def prime(self, engine, alloc, ck):
        alloc.nvalloc("a", 4096).write(0, np.ones(512))
        alloc.nvalloc("b", 2048).write(0, np.ones(256))
        p = engine.process(ck.checkpoint(blocking=False))
        engine.run()
        assert p.ok

    def test_resync_restores_protection(self):
        engine, src, dst, fabric, alloc, ck, helper = make_helper_world()
        self.prime(engine, alloc, ck)
        helper.enqueue_all()
        timeline = Timeline()
        task = ResyncTask(helper, timeline=timeline)
        p = engine.process(task.run())
        engine.run()
        assert p.ok
        assert task.completed and not task.aborted
        assert task.chunks_sent == 2
        assert task.bytes_sent == 4096 + 2048
        target = helper.targets["r0"]
        assert target.committed["a"] >= 0 and target.committed["b"] >= 0
        assert all(
            not c.dirty_remote for c in alloc.persistent_chunks()
        )
        assert not helper._paused  # rounds resumed
        assert timeline.total(tl.RESYNC, helper.owner) > 0

    def test_resync_paces_at_stream_rate(self):
        engine, src, dst, fabric, alloc, ck, helper = make_helper_world()
        self.prime(engine, alloc, ck)
        helper.enqueue_all()
        task = ResyncTask(helper)
        engine.process(task.run())
        engine.run()
        expected = (4096 + 2048) / helper.pace_rate
        assert task.duration >= expected * 0.9

    def test_stale_task_stops_silently(self):
        engine, src, dst, fabric, alloc, ck, helper = make_helper_world()
        self.prime(engine, alloc, ck)
        helper.enqueue_all()
        task = ResyncTask(helper)
        helper.epoch += 1  # retargeted before the task ever ran
        p = engine.process(task.run())
        engine.run()
        assert p.ok
        assert task.aborted and not task.completed

    def test_abort_after_failure_limit(self):
        engine, src, dst, fabric, alloc, ck, helper = make_helper_world()
        self.prime(engine, alloc, ck)
        helper.enqueue_all()
        fabric.begin_outage(1)  # buddy unreachable, never heals
        task = ResyncTask(helper, failure_limit=3, retry_pause=0.5)
        p = engine.process(task.run())
        engine.run()
        assert p.ok
        assert task.aborted and not task.completed
        # chunks went back on the queue for the next attempt
        assert helper.queued_bytes > 0

    def test_failure_limit_abort_escalates(self):
        from repro.metrics.trace import BUS

        engine, src, dst, fabric, alloc, ck, helper = make_helper_world()
        self.prime(engine, alloc, ck)
        helper.enqueue_all()
        fabric.begin_outage(1)
        escalated = []
        task = ResyncTask(
            helper, failure_limit=2, retry_pause=0.5, on_abort=escalated.append
        )
        with BUS.capture() as ring:
            engine.process(task.run())
            engine.run()
        # budget exhaustion (vs. staleness) is flagged, announced on the
        # trace bus, and escalated through on_abort so the runner can
        # keep the node in degraded mode
        assert task.failure_limited
        assert escalated == [task]
        events = ring.of_kind("resync.aborted")
        assert len(events) == 1
        assert events[0].failures >= 2

    def test_stale_abort_does_not_escalate(self):
        engine, src, dst, fabric, alloc, ck, helper = make_helper_world()
        self.prime(engine, alloc, ck)
        helper.enqueue_all()
        escalated = []
        task = ResyncTask(helper, on_abort=escalated.append)
        helper.epoch += 1  # a newer retarget owns the pairing now
        engine.process(task.run())
        engine.run()
        assert task.aborted and not task.failure_limited
        assert escalated == []


# ---------------------------------------------------------------------------
# Transient failure injection
# ---------------------------------------------------------------------------


class TestTransientInjection:
    def test_disabled_by_default(self):
        fc = FailureConfig(mtbf_local=100.0, mtbf_remote=400.0, seed=5)
        inj = FailureInjector(fc, 4, RngStreams(5))
        events = [inj.next_failure() for _ in range(200)]
        assert all(e.kind in ("soft", "hard") for e in events)
        assert all(e.duration == 0.0 for e in events)
        assert inj.transient_count == 0

    def test_enabling_transients_keeps_times_and_nodes(self):
        base = FailureConfig(mtbf_local=100.0, mtbf_remote=400.0, seed=5)
        with_t = FailureConfig(
            mtbf_local=100.0, mtbf_remote=400.0, seed=5,
            mtbf_transient=200.0, transient_outage_mean=6.0,
        )
        a = FailureInjector(base, 4, RngStreams(5))
        b = FailureInjector(with_t, 4, RngStreams(5))
        ev_a = [a.next_failure() for _ in range(300)]
        ev_b = [b.next_failure() for _ in range(300)]
        # the arrival process is scaled, not re-drawn: same gap/node
        # streams, so enabling transients rescales times deterministically
        assert all(e.node == f.node for e, f in zip(ev_a, ev_b))
        transients = [e for e in ev_b if e.is_transient]
        assert transients, "expected some transient events at these rates"
        assert all(e.duration > 0 for e in transients)
        assert all(e.duration == 0 for e in ev_b if not e.is_transient)
        # rough rate check: lam_t / lam_total = (4/200) / (4/100 + 4/400 + 4/200)
        frac = len(transients) / len(ev_b)
        assert 0.15 < frac < 0.45

    def test_transient_validation(self):
        with pytest.raises(ValueError):
            FailureInjector(
                FailureConfig(mtbf_transient=0.0), 2, RngStreams(0)
            )
        with pytest.raises(ValueError):
            FailureInjector(
                FailureConfig(transient_outage_mean=0.0), 2, RngStreams(0)
            )

    def test_peek_never_skips_or_duplicates(self):
        fc = FailureConfig(mtbf_local=100.0, mtbf_remote=400.0, seed=7,
                           mtbf_transient=300.0)
        pure = FailureInjector(fc, 4, RngStreams(7))
        mixed = FailureInjector(fc, 4, RngStreams(7))
        want = [pure.next_failure() for _ in range(30)]
        got = []
        for i in range(30):
            for _ in range(i % 3):  # arbitrary interleaved peeks
                mixed.peek()
            got.append(mixed.next_failure())
        assert got == want
        assert mixed.injected == pure.injected


class TestScriptedInjector:
    def test_replays_in_time_order(self):
        events = [
            FailureEvent(time=60.0, node=1, kind="hard"),
            FailureEvent(time=20.0, node=0, kind="soft"),
            FailureEvent(time=40.0, node=2, kind="transient", duration=5.0),
        ]
        inj = ScriptedInjector(events)
        out = [inj.next_failure() for _ in range(3)]
        assert [e.time for e in out] == [20.0, 40.0, 60.0]
        assert inj.soft_count == 1
        assert inj.hard_count == 1
        assert inj.transient_count == 1

    def test_sentinel_after_exhaustion(self):
        inj = ScriptedInjector([FailureEvent(time=1.0, node=0, kind="soft")])
        inj.next_failure()
        assert inj.peek().time == float("inf")

    def test_peek_does_not_consume(self):
        inj = ScriptedInjector([FailureEvent(time=1.0, node=0, kind="soft")])
        assert inj.peek() is inj.peek()
        assert inj.next_failure().time == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScriptedInjector([FailureEvent(time=1.0, node=0, kind="weird")])
        with pytest.raises(ValueError):
            ScriptedInjector(
                [FailureEvent(time=1.0, node=0, kind="transient", duration=0.0)]
            )


# ---------------------------------------------------------------------------
# AllReplicasLost escalation
# ---------------------------------------------------------------------------


class TestAllReplicasLost:
    def corrupt_local(self, src, alloc, name="a"):
        chunk = alloc.chunk(name)
        src.nvmm.store.write(
            f"r0/{name}#v{chunk.committed_version}",
            0,
            np.full(16, 0xAB, dtype=np.uint8),
        )
        src.nvmm.store.flush()

    def test_local_restart_without_remote_escalates(self):
        engine, src, dst, fabric, alloc, ck, helper = make_helper_world()
        alloc.nvalloc("a", 4096).write(0, np.ones(512))
        p = engine.process(ck.checkpoint(blocking=False))
        engine.run()
        assert p.ok
        self.corrupt_local(src, alloc)
        src.nvmm.crash_process("r0")
        with pytest.raises(AllReplicasLost) as ei:
            RestartManager(src).restart_process_sync("r0")
        assert ei.value.pid == "r0"
        assert ei.value.chunk == "a"
        assert ei.value.tried == ("local",)
        # structured escalation still satisfies the old contract
        assert isinstance(ei.value, NoCheckpointAvailable)

    def test_chunk_missing_on_buddy_escalates_with_both_tried(self):
        engine, src, dst, fabric, alloc, ck, helper = make_helper_world()
        alloc.nvalloc("a", 4096).write(0, np.ones(512))
        p = engine.process(ck.checkpoint(blocking=False))
        engine.run()
        assert p.ok
        self.corrupt_local(src, alloc)
        src.nvmm.crash_process("r0")
        # a buddy target exists but never committed anything
        mgr = RestartManager(src, fabric=fabric, node_id=0)
        with pytest.raises(AllReplicasLost) as ei:
            mgr.restart_process_sync(
                "r0", remote_target=helper.targets["r0"], remote_node=1
            )
        assert ei.value.tried == ("local", "buddy")

    def test_remote_restart_with_empty_buddy_escalates(self):
        engine, src, dst, fabric, alloc, ck, helper = make_helper_world()
        alloc.nvalloc("a", 4096)
        replacement = make_standalone_context(name="n0v2", engine=engine)
        mgr = RestartManager(replacement, fabric=fabric, node_id=0)
        proc = engine.process(
            mgr.restart_from_remote("r0", helper.targets["r0"], remote_node=1)
        )
        engine.run()
        assert isinstance(proc.exception, AllReplicasLost)
        assert proc.exception.tried == ("buddy",)

    def test_buddy_fetch_exhaustion_escalates(self):
        engine, src, dst, fabric, alloc, ck, helper = make_helper_world()
        alloc.nvalloc("a", 4096).write(0, np.ones(512))

        def prime():
            yield from ck.checkpoint(blocking=False)
            yield from helper.remote_checkpoint()

        p = engine.process(prime())
        engine.run()
        assert p.ok
        replacement = make_standalone_context(name="n0v2", engine=engine)
        transport = ResilientTransport(
            0, RngStreams(2),
            RetryPolicy(max_attempts=2, base_delay=0.1, jitter=0.0),
        )
        mgr = RestartManager(
            replacement, fabric=fabric, node_id=0, resilience=transport
        )
        fabric.begin_outage(1)  # buddy unreachable, never heals
        proc = engine.process(
            mgr.restart_from_remote("r0", helper.targets["r0"], remote_node=1)
        )
        engine.run()
        assert isinstance(proc.exception, AllReplicasLost)
        assert transport.stats.abandoned == 1
