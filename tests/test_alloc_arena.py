"""The jemalloc-style arena: size classes, slabs, large allocations,
coalescing, invariants."""

import pytest

from repro.alloc.arena import Arena, EXTENT_SIZE, PAGE, SIZE_CLASSES, SMALL_LIMIT
from repro.config import DRAM_CONFIG
from repro.errors import AllocationError
from repro.memory import MemoryDevice
from repro.units import KiB, MB


@pytest.fixture
def arena(dram):
    return Arena(dram, owner="test")


class TestSizeClasses:
    def test_ladder_is_sorted_unique(self):
        assert SIZE_CLASSES == sorted(set(SIZE_CLASSES))

    def test_smallest_is_8(self):
        assert SIZE_CLASSES[0] == 8

    def test_limit_under_16k(self):
        assert SMALL_LIMIT <= 14 * KiB

    def test_class_for_exact(self):
        assert Arena.size_class_for(8) == 8
        assert Arena.size_class_for(64) == 64

    def test_class_for_rounds_up(self):
        assert Arena.size_class_for(9) == 16
        assert Arena.size_class_for(129) > 129

    def test_class_for_large_is_none(self):
        assert Arena.size_class_for(SMALL_LIMIT + 1) is None

    def test_spacing_within_25_percent(self):
        """jemalloc's 4-per-doubling ladder bounds internal
        fragmentation at ~25%."""
        for a, b in zip(SIZE_CLASSES[8:], SIZE_CLASSES[9:]):
            assert b / a <= 1.34


class TestSmallAllocations:
    def test_basic_alloc_free(self, arena):
        a = arena.alloc(100)
        assert a.size_class == 112  # ladder: ...96, 112, 128...
        assert a.size == 112
        arena.free(a)
        assert arena.live_allocations == 0

    def test_slab_slot_reuse(self, arena):
        a = arena.alloc(64)
        addr = a.addr
        arena.free(a)
        b = arena.alloc(64)
        assert b.addr == addr  # LIFO slot reuse

    def test_distinct_addresses(self, arena):
        allocs = [arena.alloc(64) for _ in range(100)]
        addrs = {a.addr for a in allocs}
        assert len(addrs) == 100
        arena.check_invariants()

    def test_slab_released_when_empty(self, arena):
        allocs = [arena.alloc(64) for _ in range(10)]
        extent_before = arena.extent_bytes
        for a in allocs:
            arena.free(a)
        # slab returned to the page pool; new large alloc can use it
        big = arena.alloc(MB(1))
        assert arena.extent_bytes == extent_before or big is not None

    def test_double_free_rejected(self, arena):
        a = arena.alloc(64)
        arena.free(a)
        with pytest.raises(AllocationError):
            arena.free(a)

    def test_zero_size_rejected(self, arena):
        with pytest.raises(AllocationError):
            arena.alloc(0)


class TestLargeAllocations:
    def test_page_rounding(self, arena):
        a = arena.alloc(SMALL_LIMIT + 1)
        assert a.size % PAGE == 0
        assert a.size >= SMALL_LIMIT + 1
        assert a.size_class is None

    def test_huge_allocation(self, arena):
        a = arena.alloc(2 * EXTENT_SIZE)
        assert a.size >= 2 * EXTENT_SIZE

    def test_split_and_reuse(self, arena):
        a = arena.alloc(MB(1))
        arena.free(a)
        b = arena.alloc(MB(1))
        assert b.addr == a.addr  # first-fit reuses the hole

    def test_coalescing_adjacent_frees(self, arena):
        a = arena.alloc(MB(1))
        b = arena.alloc(MB(1))
        c = arena.alloc(MB(1))
        assert b.addr == a.addr + a.size  # contiguous carving
        arena.free(a)
        arena.free(b)
        # coalesced hole of 2MB should satisfy a 2MB request in place
        d = arena.alloc(MB(2))
        assert d.addr == a.addr
        arena.free(c)
        arena.free(d)

    def test_extent_amortization(self, arena):
        before = arena.extent_bytes
        arena.alloc(PAGE)
        grown = arena.extent_bytes - before
        assert grown >= EXTENT_SIZE or before > 0


class TestAccounting:
    def test_device_charged_for_extents(self, dram, arena):
        base = dram.allocated
        arena.alloc(MB(1))
        assert dram.allocated > base

    def test_requested_vs_reserved(self, arena):
        arena.alloc(100)  # -> 112 class
        assert arena.bytes_requested == 100
        assert arena.bytes_reserved == 112
        frag = arena.internal_fragmentation()
        assert 0.0 < frag < 0.25

    def test_counters(self, arena):
        a = arena.alloc(64)
        arena.free(a)
        assert arena.alloc_count == 1
        assert arena.free_count == 1

    def test_release_returns_capacity(self, dram):
        arena = Arena(dram, owner="x")
        base = dram.allocated
        arena.alloc(MB(1))
        arena.release()
        assert dram.allocated == base

    def test_mixed_workload_invariants(self, arena):
        import random

        rng = random.Random(7)
        live = []
        for _ in range(300):
            if live and rng.random() < 0.4:
                arena.free(live.pop(rng.randrange(len(live))))
            else:
                live.append(arena.alloc(rng.choice([8, 100, 5000, 20_000, 200_000])))
        arena.check_invariants()
        for a in live:
            arena.free(a)
        assert arena.live_allocations == 0
        assert arena.bytes_requested == 0
