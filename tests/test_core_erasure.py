"""XOR parity groups: construction, commit semantics, reconstruction,
space accounting."""

import numpy as np
import pytest

from repro.alloc import NVAllocator
from repro.config import PrecopyPolicy
from repro.core import LocalCheckpointer, XorParityGroup, make_standalone_context
from repro.errors import CheckpointError
from repro.sim import Engine


def make_group(k=3, chunk_size=4096, phantom=False, seed0=0):
    engine = Engine()
    allocs, datas, cks = [], [], []
    for i in range(k):
        ctx = make_standalone_context(name=f"m{i}", engine=engine)
        a = NVAllocator(f"m{i}", ctx.nvmm, ctx.dram, phantom=phantom)
        ch = a.nvalloc("grid", chunk_size)
        if phantom:
            ch.touch()
            datas.append(None)
        else:
            d = np.random.default_rng(seed0 + i).integers(0, 256, chunk_size).astype(np.uint8)
            ch.write(0, d)
            datas.append(d)
        ck = LocalCheckpointer(ctx, a, PrecopyPolicy(mode="none"))
        p = engine.process(ck.checkpoint(blocking=False))
        engine.run()
        assert p.ok
        allocs.append(a)
        cks.append(ck)
    parity_ctx = make_standalone_context(name="pnode", engine=engine)
    group = XorParityGroup(allocs, parity_ctx)
    return engine, allocs, datas, cks, group


class TestConstruction:
    def test_needs_two_members(self):
        engine = Engine()
        ctx = make_standalone_context(name="m0", engine=engine)
        a = NVAllocator("m0", ctx.nvmm, ctx.dram)
        with pytest.raises(CheckpointError):
            XorParityGroup([a], ctx)

    def test_space_ratio_is_one_over_k(self):
        for k in (2, 3, 5):
            _, _, _, _, group = make_group(k=k)
            assert group.space_per_member_ratio == pytest.approx(1.0 / k)

    def test_parity_bytes_per_round_is_one_chunk_set(self):
        _, allocs, _, _, group = make_group(k=3, chunk_size=8192)
        assert group.parity_bytes_per_round == 8192  # not 3 x 8192

    def test_uncommitted_members_excluded(self):
        engine, allocs, datas, cks, group = make_group(k=3)
        extra = allocs[0].nvalloc("lonely", 1024)  # only member 0 has it
        group.update_parity()
        assert "lonely" not in group._staged


class TestReconstruction:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_exact_for_every_member(self, k):
        _, allocs, datas, _, group = make_group(k=k, seed0=10)
        group.update_parity()
        group.commit()
        for i, member in enumerate(allocs):
            rebuilt = group.reconstruct(member, "grid")
            assert np.array_equal(rebuilt, datas[i])

    def test_uncommitted_parity_rejected(self):
        _, allocs, _, _, group = make_group()
        group.update_parity()  # staged, not committed
        with pytest.raises(CheckpointError):
            group.reconstruct(allocs[0], "grid")

    def test_foreign_member_rejected(self):
        engine, allocs, _, _, group = make_group()
        ctx = make_standalone_context(name="other", engine=engine)
        stranger = NVAllocator("other", ctx.nvmm, ctx.dram)
        with pytest.raises(CheckpointError):
            group.reconstruct(stranger, "grid")

    def test_parity_updates_track_new_commits(self):
        engine, allocs, datas, cks, group = make_group(seed0=20)
        group.update_parity()
        group.commit()
        # member 1 writes new data and re-checkpoints
        new = np.full(4096, 0x5A, dtype=np.uint8)
        allocs[1].chunk("grid").write(0, new)
        p = engine.process(cks[1].checkpoint(blocking=False))
        engine.run()
        assert p.ok
        group.update_parity()
        group.commit()
        assert np.array_equal(group.reconstruct(allocs[1], "grid"), new)

    def test_two_version_parity_flips(self):
        engine, allocs, datas, cks, group = make_group()
        group.update_parity()
        group.commit()
        assert group.committed["grid"] == 0
        group.update_parity()
        group.commit()
        assert group.committed["grid"] == 1

    def test_stale_parity_still_reconstructs_old_state(self):
        """The classic consistency property: parity committed at time T
        reconstructs the members' time-T data even after they move on
        (if they also keep their time-T versions)."""
        engine, allocs, datas, cks, group = make_group(seed0=30)
        group.update_parity()
        group.commit()
        rebuilt = group.reconstruct(allocs[2], "grid")
        assert np.array_equal(rebuilt, datas[2])


class TestPhantomMode:
    def test_phantom_accounts_sizes(self):
        _, allocs, _, _, group = make_group(k=3, phantom=True, chunk_size=1 << 20)
        written = group.update_parity()
        assert written == 1 << 20
        group.commit()
        assert group.recovery_read_bytes == 3 * (1 << 20)


class TestAccounting:
    def test_recovery_tax(self):
        """Erasure reads K x the data at recovery vs replication's 1x."""
        _, allocs, _, _, group = make_group(k=4, chunk_size=8192)
        group.update_parity()
        group.commit()
        assert group.recovery_read_bytes == 4 * 8192

    def test_parity_bytes_written_accumulates(self):
        _, _, _, _, group = make_group(chunk_size=2048)
        group.update_parity()
        group.update_parity()
        assert group.parity_bytes_written == 2 * 2048
