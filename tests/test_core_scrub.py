"""The checksum scrubber: detection, repair from the buddy, periodic
sweeps."""

import numpy as np
import pytest

from repro.alloc import NVAllocator
from repro.config import CheckpointConfig, PrecopyPolicy
from repro.core import (
    LocalCheckpointer,
    RemoteHelper,
    Scrubber,
    make_standalone_context,
)
from repro.net import Fabric
from repro.sim import Engine


def make_world():
    engine = Engine()
    src = make_standalone_context(name="n0", engine=engine)
    dst = make_standalone_context(name="n1", engine=engine)
    fabric = Fabric(engine, 2)
    alloc = NVAllocator("r0", src.nvmm, src.dram)
    ck = LocalCheckpointer(src, alloc, PrecopyPolicy(mode="none"))
    helper = RemoteHelper(
        0, src, fabric, 1, dst, [alloc], CheckpointConfig(remote_precopy=False)
    )
    return engine, src, dst, fabric, alloc, ck, helper


def replicate(engine, ck, helper):
    def proc():
        yield from ck.checkpoint(blocking=False)
        yield from helper.remote_checkpoint()

    p = engine.process(proc())
    engine.run()
    assert p.ok


def corrupt(src, region):
    src.nvmm.store.write(region, 0, np.full(16, 0xAB, dtype=np.uint8))
    src.nvmm.store.flush()


class TestScan:
    def test_clean_sweep(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        alloc.nvalloc("a", 4096).write(0, np.ones(512))
        replicate(engine, ck, helper)
        scrub = Scrubber(src, alloc)
        report = scrub.scan_sync()
        assert report.clean
        assert report.chunks_scanned == 1
        assert report.bytes_scanned == 4096
        assert report.duration > 0

    def test_uncommitted_chunks_skipped(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        alloc.nvalloc("a", 4096)  # never checkpointed
        report = Scrubber(src, alloc).scan_sync()
        assert report.chunks_scanned == 0

    def test_detects_corruption_without_repair(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        c = alloc.nvalloc("a", 4096)
        c.write(0, np.ones(512))
        replicate(engine, ck, helper)
        corrupt(src, f"r0/a#v{c.committed_version}")
        report = Scrubber(src, alloc).scan_sync(repair=False)
        assert report.corrupted == ["a"]
        assert report.repaired == []

    def test_repairs_from_buddy(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        c = alloc.nvalloc("a", 4096)
        data = np.arange(512, dtype=np.float64)
        c.write(0, data)
        replicate(engine, ck, helper)
        corrupt(src, f"r0/a#v{c.committed_version}")
        scrub = Scrubber(src, alloc, fabric=fabric, node_id=0,
                         remote_target=helper.targets["r0"], remote_node=1)
        report = scrub.scan_sync()
        assert report.repaired == ["a"]
        assert c.verify_checksum()
        got = c.committed_region().read(0, 4096).view(np.float64)
        assert np.array_equal(got, data)

    def test_unrepairable_without_remote(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        c = alloc.nvalloc("a", 4096)
        c.write(0, np.ones(512))
        replicate(engine, ck, helper)
        corrupt(src, f"r0/a#v{c.committed_version}")
        report = Scrubber(src, alloc).scan_sync()  # no buddy wired
        assert report.unrepairable == ["a"]

    def test_repaired_chunk_survives_crash_restart(self):
        from repro.core import RestartManager

        engine, src, dst, fabric, alloc, ck, helper = make_world()
        c = alloc.nvalloc("a", 4096)
        data = np.full(512, 7.5)
        c.write(0, data)
        replicate(engine, ck, helper)
        corrupt(src, f"r0/a#v{c.committed_version}")
        Scrubber(src, alloc, fabric=fabric, node_id=0,
                 remote_target=helper.targets["r0"], remote_node=1).scan_sync()
        src.nvmm.store.crash()
        src.nvmm.crash_process("r0")
        report = RestartManager(src).restart_process_sync("r0")
        assert np.array_equal(report.allocator.chunk("a").view(np.float64), data)


class TestPeriodic:
    def test_periodic_sweeps(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        alloc.nvalloc("a", 4096).write(0, np.ones(512))
        replicate(engine, ck, helper)
        scrub = Scrubber(src, alloc, interval=10.0)
        engine.process(scrub.run())
        engine.run(until=35.0)
        scrub.stop()
        engine.run(until=50.0)
        assert len(scrub.reports) == 3
        assert scrub.total_corruption_found == 0

    def test_aggregates(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        c = alloc.nvalloc("a", 4096)
        c.write(0, np.ones(512))
        replicate(engine, ck, helper)
        corrupt(src, f"r0/a#v{c.committed_version}")
        scrub = Scrubber(src, alloc, fabric=fabric, node_id=0,
                         remote_target=helper.targets["r0"], remote_node=1)
        scrub.scan_sync()
        scrub.scan_sync()  # second sweep: already repaired
        assert scrub.total_corruption_found == 1
        assert scrub.total_repaired == 1


class TestResilientRepair:
    """Repair must degrade gracefully: a corrupted or unreachable buddy
    copy yields ``unrepairable`` (never an exception), and a later sweep
    repairs once the buddy is healthy again."""

    def corrupted_world(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        c = alloc.nvalloc("a", 4096)
        c.write(0, np.arange(512, dtype=np.float64))
        replicate(engine, ck, helper)
        corrupt(src, f"r0/a#v{c.committed_version}")
        scrub = Scrubber(src, alloc, fabric=fabric, node_id=0,
                         remote_target=helper.targets["r0"], remote_node=1)
        return engine, src, dst, fabric, helper, scrub

    def test_corrupted_buddy_copy_is_unrepairable(self):
        engine, src, dst, fabric, helper, scrub = self.corrupted_world()
        target = helper.targets["r0"]
        corrupt(dst, f"rmt:r0/a#v{target.committed['a']}")
        report = scrub.scan_sync()
        assert report.unrepairable == ["a"]
        assert report.repaired == []
        assert not target.verify("a")

    def test_buddy_outage_is_unrepairable_then_repaired(self):
        engine, src, dst, fabric, helper, scrub = self.corrupted_world()
        fabric.begin_outage(1)
        first = scrub.scan_sync()
        assert first.unrepairable == ["a"]
        fabric.end_outage(1)
        second = scrub.scan_sync()
        assert second.repaired == ["a"]
        assert scrub.total_repaired == 1

    def test_repair_retries_through_a_flap_with_transport(self):
        from repro.resilience import ResilientTransport, RetryPolicy
        from repro.sim.rng import RngStreams

        engine, src, dst, fabric, helper, scrub = self.corrupted_world()
        scrub.resilience = ResilientTransport(
            0, RngStreams(4), RetryPolicy(base_delay=0.5, jitter=0.0)
        )
        fabric.begin_outage(1)
        engine.call_at(engine.now + 2.0, lambda: fabric.end_outage(1))
        report = scrub.scan_sync()
        assert report.repaired == ["a"]
        assert scrub.resilience.stats.retries >= 1
