"""Discrete-event engine: clock, events, processes, determinism."""

import pytest

from repro.errors import ProcessKilled, SimulationError
from repro.sim import Engine


class TestClock:
    def test_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_run_empty_returns_now(self, engine):
        assert engine.run() == 0.0

    def test_run_until_advances_clock_with_empty_heap(self, engine):
        engine.run(until=10.0)
        assert engine.now == 10.0

    def test_timeout_advances_clock(self, engine):
        def p():
            yield engine.timeout(5.0)
        engine.process(p())
        engine.run()
        assert engine.now == 5.0

    def test_run_until_stops_before_future_events(self, engine):
        fired = []

        def p():
            yield engine.timeout(100.0)
            fired.append(engine.now)

        engine.process(p())
        engine.run(until=10.0)
        assert engine.now == 10.0
        assert not fired
        engine.run()  # resume
        assert fired == [100.0]

    def test_negative_timeout_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.timeout(-1.0)


class TestEvents:
    def test_succeed_delivers_value(self, engine):
        ev = engine.event()
        got = []

        def p():
            got.append((yield ev))

        engine.process(p())
        ev.succeed(42)
        engine.run()
        assert got == [42]

    def test_fail_raises_in_waiter(self, engine):
        ev = engine.event()

        def p():
            with pytest.raises(RuntimeError, match="boom"):
                yield ev
            return "handled"

        proc = engine.process(p())
        ev.fail(RuntimeError("boom"))
        engine.run()
        assert proc.value == "handled"

    def test_double_trigger_is_error(self, engine):
        ev = engine.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_value_before_trigger_is_error(self, engine):
        ev = engine.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_fail_requires_exception_instance(self, engine):
        ev = engine.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")  # type: ignore[arg-type]

    def test_callback_after_dispatch_still_fires(self, engine):
        ev = engine.event()
        ev.succeed("x")
        engine.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        engine.run()
        assert seen == ["x"]


class TestCombinators:
    def test_all_of_collects_values_in_order(self, engine):
        def p():
            t1 = engine.timeout(2.0, value="b")
            t2 = engine.timeout(1.0, value="a")
            vals = yield engine.all_of([t1, t2])
            return vals

        proc = engine.process(p())
        engine.run()
        assert proc.value == ["b", "a"]
        assert engine.now == 2.0

    def test_all_of_empty_fires_immediately(self, engine):
        def p():
            return (yield engine.all_of([]))

        proc = engine.process(p())
        engine.run()
        assert proc.value == []

    def test_any_of_returns_first_index_and_value(self, engine):
        def p():
            slow = engine.timeout(5.0, value="slow")
            fast = engine.timeout(1.0, value="fast")
            return (yield engine.any_of([slow, fast]))

        proc = engine.process(p())
        engine.run()
        assert proc.value == (1, "fast")

    def test_any_of_requires_events(self, engine):
        with pytest.raises(SimulationError):
            engine.any_of([])

    def test_all_of_fails_fast(self, engine):
        ev = engine.event()

        def p():
            with pytest.raises(ValueError):
                yield engine.all_of([ev, engine.timeout(100.0)])
            return engine.now

        proc = engine.process(p())
        ev.fail(ValueError("nope"))
        engine.run()
        # failure propagated immediately, not at t=100
        assert proc.value == 0.0


class TestProcesses:
    def test_process_is_waitable(self, engine):
        def child():
            yield engine.timeout(3.0)
            return "done"

        def parent():
            return (yield engine.process(child()))

        proc = engine.process(parent())
        engine.run()
        assert proc.value == "done"

    def test_yielding_non_event_fails_the_process(self, engine):
        def bad():
            yield 42  # type: ignore[misc]

        proc = engine.process(bad())
        engine.run()
        assert proc.triggered and not proc.ok
        assert isinstance(proc.exception, SimulationError)

    def test_exception_in_process_propagates_to_waiter(self, engine):
        def bad():
            yield engine.timeout(1.0)
            raise KeyError("broken")

        def parent():
            with pytest.raises(KeyError):
                yield engine.process(bad())
            return "caught"

        proc = engine.process(parent())
        engine.run()
        assert proc.value == "caught"

    def test_kill_injects_process_killed(self, engine):
        progress = []

        def victim():
            yield engine.timeout(10.0)
            progress.append("survived")

        proc = engine.process(victim())
        engine.run(until=1.0)
        proc.kill()
        engine.run()
        assert not progress
        assert not proc.ok
        assert isinstance(proc.exception, ProcessKilled)

    def test_kill_finished_process_is_noop(self, engine):
        def quick():
            yield engine.timeout(1.0)
            return 7

        proc = engine.process(quick())
        engine.run()
        proc.kill()
        engine.run()
        assert proc.value == 7

    def test_killed_process_ignores_stale_event(self, engine):
        ev = engine.event()

        def victim():
            yield ev

        proc = engine.process(victim())
        engine.run()
        proc.kill()
        engine.run()
        ev.succeed("late")  # must not resurrect the process
        engine.run()
        assert not proc.alive


class TestDeterminism:
    def test_fifo_tie_breaking(self, engine):
        order = []

        def p(name):
            yield engine.timeout(1.0)
            order.append(name)

        for name in "abc":
            engine.process(p(name))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_call_at_past_rejected(self, engine):
        def p():
            yield engine.timeout(5.0)

        engine.process(p())
        engine.run()
        with pytest.raises(SimulationError):
            engine.call_at(1.0, lambda: None)

    def test_run_not_reentrant(self, engine):
        def p():
            engine.run()
            yield engine.timeout(1.0)

        proc = engine.process(p())
        engine.run()
        assert isinstance(proc.exception, SimulationError)

    def test_peek(self, engine):
        assert engine.peek() == float("inf")
        engine.timeout(3.0)
        assert engine.peek() == pytest.approx(3.0)
