"""Lazy restart: NVM-resident chunks, in-place reads, copy-on-write
migration (§IV read path / §VIII recovery optimization)."""

import numpy as np
import pytest

from repro.core import NVMCheckpoint
from repro.errors import CheckpointError
from repro.memory import InMemoryStore
from repro.units import MB


@pytest.fixture
def checkpointed_store():
    store = InMemoryStore()
    app = NVMCheckpoint("p", store=store)
    data = np.arange(MB(2) // 8, dtype=np.float64)
    app.nvalloc("x", MB(2)).write(0, data)
    app.nvalloc("y", MB(1)).write(0, np.ones(MB(1) // 8))
    app.nvchkptall()
    app.crash()
    return store, data


class TestLazyRestartSemantics:
    def test_restart_is_near_instant(self, checkpointed_store):
        store, _ = checkpointed_store
        eager_app, eager_rep = NVMCheckpoint.restart("p", store)
        store2 = store  # same store: restart again lazily
        lazy_app, lazy_rep = NVMCheckpoint.restart("p", store2, lazy=True)
        assert lazy_rep.chunks_lazy == 2
        assert lazy_rep.bytes_local == 0  # nothing copied
        # lazy restart pays only the verification read (~4x cheaper
        # than the eager copy-back)
        assert lazy_rep.duration < eager_rep.duration / 2

    def test_resident_reads_serve_committed_data(self, checkpointed_store):
        store, data = checkpointed_store
        app, rep = NVMCheckpoint.restart("p", store, lazy=True)
        x = app.chunk("x")
        assert x.nvm_resident
        assert np.array_equal(x.view(np.float64), data)
        assert np.array_equal(
            x.read(0, 80).view(np.float64), data[:10]
        )
        assert x.nvm_resident  # reads do not migrate

    def test_view_is_read_only_while_resident(self, checkpointed_store):
        store, _ = checkpointed_store
        app, _ = NVMCheckpoint.restart("p", store, lazy=True)
        v = app.chunk("x").view(np.float64)
        with pytest.raises(ValueError):
            v[0] = 1.0

    def test_first_write_migrates_and_applies(self, checkpointed_store):
        store, data = checkpointed_store
        app, _ = NVMCheckpoint.restart("p", store, lazy=True)
        x = app.chunk("x")
        x.write(0, np.full(10, -1.0))
        assert not x.nvm_resident
        got = x.view(np.float64)
        assert (got[:10] == -1.0).all()
        assert np.array_equal(got[10:], data[10:])  # rest preserved by COW
        assert x.take_migration_bytes() == MB(2)
        assert x.take_migration_bytes() == 0  # reset after take

    def test_migration_observer_fires(self, checkpointed_store):
        store, _ = checkpointed_store
        app, _ = NVMCheckpoint.restart("p", store, lazy=True)
        x = app.chunk("x")
        seen = []
        x.on_migrate.append(lambda c, n: seen.append((c.name, n)))
        x.write(0, b"\x01")
        assert seen == [("x", MB(2))]

    def test_migration_counts_as_fault(self, checkpointed_store):
        store, _ = checkpointed_store
        app, _ = NVMCheckpoint.restart("p", store, lazy=True)
        x = app.chunk("x")
        assert x.protected  # restore_lazy write-protects
        faults = x.write(0, b"\x01")
        assert faults == 1

    def test_resident_chunks_skipped_by_checkpoint(self, checkpointed_store):
        store, _ = checkpointed_store
        app, _ = NVMCheckpoint.restart("p", store, lazy=True)
        stats = app.nvchkptall()
        assert stats.chunks_copied == 0
        assert stats.chunks_skipped == 2
        assert app.chunk("x").nvm_resident  # untouched chunks stay put

    def test_written_resident_chunk_recheckpoints(self, checkpointed_store):
        store, _ = checkpointed_store
        app, _ = NVMCheckpoint.restart("p", store, lazy=True)
        app.chunk("x").write(0, np.full(10, 5.0))
        stats = app.nvchkptall()
        assert stats.chunks_copied == 1
        assert app.chunk("x").committed_version == 1

    def test_crash_after_lazy_restart_loses_nothing(self, checkpointed_store):
        store, data = checkpointed_store
        app, _ = NVMCheckpoint.restart("p", store, lazy=True)
        app.crash()
        app2, _ = NVMCheckpoint.restart("p", store)
        assert np.array_equal(app2.chunk("x").view(np.float64), data)

    def test_restore_lazy_requires_committed(self, ctx):
        from repro.alloc import NVAllocator

        alloc = NVAllocator("q", ctx.nvmm, ctx.dram)
        c = alloc.nvalloc("fresh", 1024)
        with pytest.raises(CheckpointError):
            c.restore_lazy()

    def test_stage_of_resident_chunk_migrates_first(self, checkpointed_store):
        store, data = checkpointed_store
        app, _ = NVMCheckpoint.restart("p", store, lazy=True)
        x = app.chunk("x")
        x.stage_to_nvm()
        assert not x.nvm_resident
        assert np.array_equal(x.view(np.float64), data)


class TestLazyRestartProtection:
    """Regression: the restart manager's lazy branch must re-protect
    verified NVM-resident chunks, and charge the checksum-verify read
    symmetrically on both restart paths."""

    def test_lazy_restart_reprotects_verified_chunks(self, checkpointed_store):
        store, _ = checkpointed_store
        app, rep = NVMCheckpoint.restart("p", store, lazy=True)
        assert rep.chunks_lazy == 2
        for name in ("x", "y"):
            c = app.chunk(name)
            assert c.nvm_resident
            assert c.protected, (
                f"lazy restart left {name!r} unprotected: its first write "
                "would neither fault nor migrate, so pre-copy never sees it"
            )
            # the first write faults exactly once and migrates
            assert c.write(0, b"\x01") == 1
            assert not c.nvm_resident

    def test_bytes_verified_charged_on_both_paths(self, checkpointed_store):
        store, _ = checkpointed_store
        _, eager_rep = NVMCheckpoint.restart("p", store)
        _, lazy_rep = NVMCheckpoint.restart("p", store, lazy=True)
        total = MB(2) + MB(1)
        assert eager_rep.bytes_verified == total
        assert lazy_rep.bytes_verified == total

    def test_eager_restart_pays_verify_plus_copy(self, checkpointed_store):
        """The verify read (nbytes/4 on the NVM bus) is charged before
        the eager copy-back, so eager duration strictly exceeds the
        copy alone and the lazy path costs exactly the verify read."""
        store, _ = checkpointed_store
        _, eager_rep = NVMCheckpoint.restart("p", store)
        _, lazy_rep = NVMCheckpoint.restart("p", store, lazy=True)
        assert lazy_rep.duration > 0.0
        # eager = verify + full copy ~= 5x the lazy verify-only cost
        assert eager_rep.duration == pytest.approx(5 * lazy_rep.duration, rel=0.01)


class TestLazyRestartAccounting:
    def test_binding_charges_migration_time(self, ctx):
        from repro.apps import RankBinding
        from repro.alloc import NVAllocator

        alloc = NVAllocator("r0", ctx.nvmm, ctx.dram, phantom=True)
        binding = RankBinding(rank="r0", node_id=0, allocator=alloc, engine=ctx.engine)
        cost = binding.charge_migration(MB(200))
        assert cost == pytest.approx(MB(200) / binding.migration_rate)
        assert binding.migration_time == pytest.approx(cost)

    def test_phantom_lazy_roundtrip(self, ctx):
        from repro.alloc import NVAllocator
        from repro.config import PrecopyPolicy
        from repro.core import LocalCheckpointer

        alloc = NVAllocator("r0", ctx.nvmm, ctx.dram, phantom=True)
        c = alloc.nvalloc("ph", MB(4))
        ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(mode="none"))
        ck.checkpoint()
        c.restore_lazy()
        assert c.nvm_resident
        c.touch()
        assert not c.nvm_resident
        assert c.take_migration_bytes() == MB(4)
