"""Golden-equivalence suite for the policy/destination/engine refactor.

The fixtures under ``tests/golden/`` were captured from the
pre-refactor checkpointers (see ``tests/golden/generate_fixtures.py``).
These tests re-run the same scenarios through the unified
:class:`~repro.core.engine.CheckpointEngine` pipeline and require
byte-for-byte identical schedules and stats — the refactor must be
behaviour-preserving, not merely similar.

A failure here means simulated *semantics* changed.  If that was
deliberate, regenerate the fixtures and say so in the PR; otherwise it
is a regression.
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "golden_generate_fixtures",
        os.path.join(GOLDEN_DIR, "generate_fixtures.py"),
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


gen = _load_generator()


def _roundtrip(obj):
    """Normalize through JSON exactly like the stored fixture was."""
    return json.loads(json.dumps(obj, sort_keys=True))


def _fixture(name: str):
    path = os.path.join(GOLDEN_DIR, name)
    with open(path) as fh:
        return json.load(fh)


@pytest.mark.parametrize("mode", gen.MODES)
def test_standalone_schedule_matches_golden(mode):
    stored = {rec["mode"]: rec for rec in _fixture("standalone_schedules.json")}
    live = _roundtrip(gen.standalone_schedule(mode))
    assert live == stored[mode]


def test_standalone_modes_are_distinct():
    """The scenario must actually separate the four policies (else the
    per-mode assertions prove nothing): the naive baseline copies at
    the checkpoint, CPC pre-copies everything, DCPC pre-copies the hot
    chunk redundantly, DCPCP's prediction withholds it."""
    recs = {rec["mode"]: rec for rec in _fixture("standalone_schedules.json")}
    assert recs["none"]["total_precopy_bytes"] == 0
    assert recs["cpc"]["total_coordinated_bytes"] == 0
    assert recs["dcpc"]["precopy"]["redundant_copies"] > 0
    assert recs["dcpcp"]["precopy"]["redundant_copies"] == 0
    assert (
        recs["dcpcp"]["total_precopy_bytes"] < recs["dcpc"]["total_precopy_bytes"]
    )
    # the full schedule record (coordinated stats + pre-copy accounting)
    # is distinct per mode; DCPC and DCPCP share the coordinated-step
    # stats (both re-copy the hot chunk there) but differ in pre-copy
    schedules = [
        json.dumps(
            {k: v for k, v in recs[m].items() if k != "mode"}, sort_keys=True
        )
        for m in gen.MODES
    ]
    assert len(set(schedules)) == len(gen.MODES)


def test_pinned_grid_matches_golden():
    """The 16-cell pinned bench grid (4 modes x 4 NVM bandwidths, both
    tiers on) on the serial reference path reproduces the pre-refactor
    records exactly — every timing, byte count and resilience counter."""
    stored = _fixture("pinned_grid_records.json")
    live = _roundtrip(gen.pinned_grid_records())
    assert len(live) == 16
    assert live == stored
