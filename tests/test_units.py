"""Unit helpers: conversions, alignment, paging arithmetic."""

import pytest

from repro import units


class TestSizes:
    def test_kib_mib_gib_ladder(self):
        assert units.MiB == 1024 * units.KiB
        assert units.GiB == 1024 * units.MiB

    def test_kb_mb_gb_constructors(self):
        assert units.KB(1) == 1024
        assert units.MB(2) == 2 * 1024 * 1024
        assert units.GB(0.5) == 512 * 1024 * 1024

    def test_fractional_sizes_truncate_to_int(self):
        assert isinstance(units.MB(1.5), int)
        assert units.MB(1.5) == int(1.5 * units.MiB)

    def test_to_mb_roundtrip(self):
        assert units.to_MB(units.MB(410)) == pytest.approx(410.0)

    def test_to_gb_roundtrip(self):
        assert units.to_GB(units.GB(48)) == pytest.approx(48.0)


class TestTimes:
    def test_usec_nsec_msec(self):
        assert units.usec(1) == pytest.approx(1e-6)
        assert units.nsec(50) == pytest.approx(50e-9)
        assert units.msec(3) == pytest.approx(3e-3)

    def test_minutes_hours(self):
        assert units.minutes(2) == 120.0
        assert units.hours(1.5) == 5400.0


class TestRates:
    def test_gb_per_sec(self):
        assert units.GB_per_sec(2.0) == 2 * units.GiB

    def test_gbit_per_sec_is_decimal(self):
        # 40 Gb/s IB = 5e9 bytes/s line rate
        assert units.Gbit_per_sec(40.0) == pytest.approx(5e9)

    def test_mb_per_sec(self):
        assert units.MB_per_sec(400) == 400 * units.MiB


class TestPaging:
    def test_pages_of_exact(self):
        assert units.pages_of(units.PAGE_SIZE) == 1
        assert units.pages_of(3 * units.PAGE_SIZE) == 3

    def test_pages_of_partial_rounds_up(self):
        assert units.pages_of(1) == 1
        assert units.pages_of(units.PAGE_SIZE + 1) == 2

    def test_pages_of_zero_and_negative(self):
        assert units.pages_of(0) == 0
        assert units.pages_of(-5) == 0

    def test_align_up(self):
        assert units.align_up(1) == units.PAGE_SIZE
        assert units.align_up(units.PAGE_SIZE) == units.PAGE_SIZE
        assert units.align_up(units.PAGE_SIZE + 1) == 2 * units.PAGE_SIZE

    def test_align_up_custom_alignment(self):
        assert units.align_up(10, 8) == 16
        assert units.align_up(16, 8) == 16

    def test_align_up_nonpositive(self):
        assert units.align_up(0) == 0
        assert units.align_up(-3) == 0
