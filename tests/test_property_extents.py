"""Property-based tests of dirty-page extent coalescing and the
incremental staging path: whatever writes land, the union of copied
extents covers exactly the dirty page set — no page copied twice, none
missed — and extent-granular staging leaves the NVM slot byte-identical
to DRAM."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc import NVAllocator
from repro.core import make_standalone_context
from repro.memory.page import PageTable, StalePageMap

PAGE = 64  # small pages so a few writes exercise many boundary cases
N_PAGES = 40
NBYTES = N_PAGES * PAGE - 17  # deliberately ragged final page

writes = st.lists(
    st.tuples(
        st.integers(0, NBYTES - 1),
        st.integers(1, 5 * PAGE),
    ),
    min_size=0,
    max_size=20,
)


def _clip(off, n):
    return off, min(n, NBYTES - off)


def _dirty_pages(ws):
    pages = set()
    for off, n in (_clip(o, n) for o, n in ws):
        pages.update(range(off // PAGE, (off + n - 1) // PAGE + 1))
    return pages


def _extent_pages(extents):
    """Page indexes covered by the extents, asserting page alignment,
    ordering and coalescing on the way."""
    covered = []
    prev_end = -1
    for off, n in extents:
        assert n > 0
        assert off % PAGE == 0, "extent not page-aligned"
        assert off + n <= NBYTES
        # sorted, disjoint, and truly coalesced (a zero gap would mean
        # two adjacent runs that should have merged)
        assert off > prev_end, "extents overlap or touch (not coalesced)"
        prev_end = off + n
        last = (off + n - 1) // PAGE
        covered.extend(range(off // PAGE, last + 1))
    assert len(covered) == len(set(covered)), "a page is covered twice"
    return set(covered)


@given(ws=writes)
@settings(max_examples=120, deadline=None)
def test_extent_union_equals_dirty_page_set(ws):
    pt = PageTable(NBYTES, page_size=PAGE)
    for off, n in (_clip(o, n) for o, n in ws):
        pt.mark_nvdirty(off, n)
    extents = pt.nvdirty_extents()
    assert _extent_pages(extents) == _dirty_pages(ws)
    # extent bytes match the table's own byte accounting
    assert sum(n for _, n in extents) == pt.nvdirty_bytes()


@given(ws=writes, cleared=st.integers(0, 19))
@settings(max_examples=80, deadline=None)
def test_per_slot_clear_is_isolated(ws, cleared):
    """Marks land in every slot; clearing one slot's extents leaves the
    sibling slot's stale set untouched."""
    pmap = StalePageMap(NBYTES, 2, page_size=PAGE)
    pmap.clear_all(0)
    pmap.clear_all(1)
    for off, n in (_clip(o, n) for o, n in ws):
        pmap.mark(off, n)
    before_other = pmap.extents(1)
    ext = pmap.extents(0)[: cleared or None]
    pmap.clear_extents(0, ext)
    assert pmap.extents(1) == before_other
    # the cleared pages are gone from slot 0, the rest remain
    remaining = _extent_pages(pmap.extents(0)) if pmap.extents(0) else set()
    assert remaining == _dirty_pages(ws) - _extent_pages(ext)


REAL_PAGE = 4096
C_BYTES = 6 * REAL_PAGE + 100  # ragged multi-page chunk (real page size)

chunk_writes = st.lists(
    st.tuples(
        st.integers(0, C_BYTES - 1),
        st.integers(1, 2 * REAL_PAGE),
        st.integers(0, 255),
    ),
    min_size=1,
    max_size=12,
)


@given(rounds=st.lists(chunk_writes, min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_extent_staging_reproduces_dram_exactly(rounds):
    """Alternating-slot incremental staging: after each checkpoint's
    extent copy, the staged NVM slot is byte-identical to DRAM — the
    end-to-end 'no page copied twice, none missed' property."""
    ctx = make_standalone_context(name="prop-extents")
    alloc = NVAllocator(
        "p0", ctx.nvmm, ctx.dram, phantom=False, clock=lambda: ctx.engine.now
    )
    chunk = alloc.nvalloc("c", C_BYTES)
    for ws in rounds:
        for off, n, val in ws:
            n = min(n, C_BYTES - off)
            chunk.write(off, np.full(n, val, dtype=np.uint8))
        extents = chunk.copy_extents("local")
        moved = chunk.stage_to_nvm(extents)
        assert moved == sum(n for _, n in extents)
        staged = np.asarray(chunk.inprogress_region().read(0, C_BYTES))
        assert np.array_equal(staged, chunk.dram), (
            "staged slot differs from DRAM after extent copy"
        )
        chunk.commit()
        assert chunk.stale_bytes("local", slot=chunk.committed_version) == 0
