"""Elastic membership + live chunk migration (ISSUE 8).

Three cluster scenarios plus unit coverage of the planner and SLO
guard:

1. the **elastic grow/shrink** scenario from ``repro.tools.elastic``:
   an early hard failure overloads a survivor, a spare *joins* and the
   planner offloads onto it in bounded batches under the SLO, the
   replaced node *drains* and departs, and the newcomer's late death
   fails its source back to the pre-migration buddy **incrementally**
   (strictly fewer re-sync bytes than the full-resync baseline);
2. a **drain with evacuation**: the draining node's hosted copies
   migrate off live before it departs, firing every ``migrate.*``
   crash point along the way;
3. an **aborted evacuation**: the migration's source dies mid-batch —
   the epoch guard kills the stale task, ownership never flips, the
   drain stays incomplete (retired, not departed) and the old pairing
   goes on protecting the source.
"""

import pytest

from repro.apps import SyntheticModel
from repro.baselines import precopy_config
from repro.cluster import (
    Cluster,
    ClusterRunner,
    FailureEvent,
    MembershipEvent,
    ScriptedInjector,
)
from repro.config import ClusterConfig, MigrationConfig
from repro.faults.crashpoints import FaultInjector, all_points, install
from repro.metrics import timeline as tl
from repro.metrics.trace import BUS
from repro.net.topology import Topology
from repro.resilience import BuddyDirectory, MigrationPlanner, SloGuard
from repro.tools.elastic import run_elastic, run_full_resync_baseline
from repro.units import GB_per_sec

pytestmark = pytest.mark.migration

#: generous bound for the scenario fixtures: SLO behaviour has its own
#: calibrated check in the elastic smoke; these tests pin mechanics
TEST_SLO = 0.25


# ---------------------------------------------------------------------------
# The elastic grow/shrink scenario (the tentpole's acceptance story).
# ---------------------------------------------------------------------------


class TestElasticScenario:
    @pytest.fixture(scope="class")
    def elastic(self):
        return run_elastic(TEST_SLO)

    @pytest.fixture(scope="class")
    def baseline(self):
        return run_full_resync_baseline()

    def test_membership_counters(self, elastic):
        cluster, runner, res = elastic
        assert res.elastic
        assert res.membership_joins == 1
        assert res.membership_drains == 1
        assert res.membership_departs == 1
        ctrl = runner.membership_controller
        assert ctrl.moves_failed == 0
        assert ctrl.plans_issued == ctrl.moves_completed == 1

    def test_join_offloads_overloaded_buddy_onto_newcomer(self, elastic):
        cluster, runner, res = elastic
        # the early failure re-paired node 1 onto node 0 (two sources);
        # the join move rebalanced node 1's copies onto newcomer 4
        assert (1, 0, 4) in runner.directory.migrations
        assert res.migrations_completed == 1
        assert res.migrations_aborted == 0
        assert res.migration_bytes > 0
        # bounded batches: a 40 MB footprint through 8 MB batches
        assert res.migration_batches >= 5
        assert res.timeline.total(tl.MIGRATION) > 0

    def test_drained_node_departed(self, elastic):
        cluster, runner, res = elastic
        d = runner.directory
        assert not d.is_participant(2)
        assert d.orphans_of(2) == []

    def test_failover_after_migration_is_incremental(self, elastic, baseline):
        _, e_runner, e_res = elastic
        _, _, b_res = baseline
        # newcomer 4 died; its source (node 1) fell back to node 0,
        # whose copies were still current for every chunk that did not
        # re-commit since the cutover
        assert (1, 4, 0) in e_runner.directory.repairs
        assert e_res.resyncs_completed >= 2
        assert 0 < e_res.resync_bytes < b_res.resync_bytes

    def test_slo_guard_observed_and_held(self, elastic):
        cluster, runner, res = elastic
        guard = runner.slo_guard
        assert guard is not None
        assert guard.observations > 0
        assert guard.within_slo
        assert res.migration_max_ckpt_latency == guard.max_latency > 0

    def test_protection_restored_at_end(self, elastic):
        cluster, runner, res = elastic
        for node in cluster.active_nodes:
            helper = node.helper
            assert runner.directory.is_healthy(helper.buddy_id)
            for target in helper.targets.values():
                assert target.committed_chunks()

    def test_determinism(self):
        a = run_elastic(TEST_SLO)[2].to_dict()
        b = run_elastic(TEST_SLO)[2].to_dict()
        assert a == b
        assert "membership" in a


# ---------------------------------------------------------------------------
# Drain with live evacuation (and the migrate.* crash points).
# ---------------------------------------------------------------------------


def drain_app():
    return SyntheticModel(
        checkpoint_mb_per_rank=20,
        chunk_mb=5,
        iteration_compute_time=10.0,
        comm_mb_per_iteration=5,
    )


def build_drain_cluster(seed=7):
    cluster = Cluster(
        ClusterConfig(nodes=4, racks=2),
        nvm_write_bandwidth=GB_per_sec(2.0),
        seed=seed,
    )
    cfg = precopy_config(10, 30)
    from dataclasses import replace

    cfg = replace(
        cfg,
        resilience=replace(
            cfg.resilience,
            migration=MigrationConfig(enabled=True, batch_bytes=8 * 1024 * 1024),
        ),
    )
    cluster.build(drain_app(), cfg, ranks_per_node=2)
    return cluster


class CountingInjector(FaultInjector):
    def __init__(self):
        self.hits = {}

    def on_fire(self, name, info):
        self.hits[name] = self.hits.get(name, 0) + 1


def run_drain_scenario(events=(), iters=12, seed=7):
    cluster = build_drain_cluster(seed=seed)
    runner = ClusterRunner(
        cluster,
        injector=ScriptedInjector(list(events)) if events else None,
        membership=[MembershipEvent(time=40.0, node=1, action="drain")],
    )
    return cluster, runner, runner.run(iters)


class TestDrainEvacuation:
    @pytest.fixture(scope="class")
    def scenario(self):
        counter = CountingInjector()
        with install(counter):
            cluster, runner, res = run_drain_scenario()
        return cluster, runner, res, counter

    def test_evacuation_then_depart(self, scenario):
        cluster, runner, res, _ = scenario
        # node 1 hosted node 0's copies; they evacuated to node 3
        # (healthy, cross-rack from 0) before node 1 departed
        assert (0, 1, 3) in runner.directory.migrations
        assert cluster.nodes[0].helper.buddy_id == 3
        assert res.migrations_completed == 1
        assert res.membership_departs == 1
        assert not runner.directory.is_participant(1)

    def test_ownership_flip_is_atomic_and_late(self, scenario):
        cluster, runner, res, _ = scenario
        # the new buddy holds committed copies of everything migrated
        helper = cluster.nodes[0].helper
        for target in helper.targets.values():
            assert target.committed_chunks()
        # ...and the cutover published the replication claims backing
        # later incremental retargets onto it
        assert helper._replicated.get(3)
        # no failover machinery ran: this was planned, not reactive
        assert res.buddy_repairs == 0
        assert res.resyncs_completed == 0

    def test_every_migrate_crash_point_fired(self, scenario):
        _, _, _, counter = scenario
        for cp in all_points("migrate"):
            assert counter.hits.get(cp.name, 0) >= 1, cp.name

    def test_migration_trace_events(self):
        with BUS.capture() as ring:
            run_drain_scenario()
        kinds = {e.kind for e in ring.events}
        assert {
            "membership.change",
            "migration.planned",
            "migration.batch",
            "migration.cutover",
        } <= kinds
        cutovers = ring.of_kind("migration.cutover")
        assert cutovers and cutovers[0].to_target == "n3"
        batches = ring.of_kind("migration.batch")
        assert all(b.nbytes <= 8 * 1024 * 1024 for b in batches)

    def test_determinism(self):
        a = run_drain_scenario()[2].to_dict()
        b = run_drain_scenario()[2].to_dict()
        assert a == b


class TestAbortedEvacuation:
    @pytest.fixture(scope="class")
    def scenario(self):
        # the migration source dies mid-evacuation: the rebuilt helper
        # bumps the pairing epoch and the stale task must abort without
        # ever flipping ownership
        return run_drain_scenario(
            events=[FailureEvent(time=45.0, node=0, kind="hard")]
        )

    def test_abort_leaves_pairing_untouched(self, scenario):
        cluster, runner, res = scenario
        assert res.migrations_aborted == 1
        assert res.migrations_completed == 0
        assert runner.directory.migrations == []
        assert runner.membership_controller.moves_failed == 1

    def test_drain_stays_incomplete(self, scenario):
        cluster, runner, res = scenario
        d = runner.directory
        # retired (no new pairings) but NOT departed: it still hosts
        # node 0's copies and abandoning them would drop protection
        assert d.is_retired(1)
        assert d.is_participant(1)
        assert res.membership_departs == 0

    def test_abort_leaves_no_replication_claims(self, scenario):
        cluster, runner, res = scenario
        # the staged copies died with the task's private targets; if
        # the per-chunk records leaked into the helper, a later
        # incremental retarget onto node 3 would skip re-sending chunks
        # it does not actually hold
        (task,) = runner._migrations
        assert task.aborted
        assert task.plan.to_buddy not in task.helper._replicated

    def test_source_recovers_under_old_pairing(self, scenario):
        cluster, runner, res = scenario
        assert cluster.nodes[0].helper.buddy_id == 1
        assert res.iterations == 12
        for target in cluster.nodes[0].helper.targets.values():
            assert target.committed_chunks()


# ---------------------------------------------------------------------------
# MigrationPlanner (pure directory logic).
# ---------------------------------------------------------------------------


class TestMigrationPlanner:
    def overloaded_directory(self):
        # striped racks: rack0={0,2,4}, rack1={1,3,5}; ring 0->1->2->3->0
        d = BuddyDirectory(Topology(6, 2), nodes=[0, 1, 2, 3])
        d.mark_failed(2)
        d.repair(1)  # 1's buddy died; lands on 0 -> load(0) == 2
        d.mark_recovered(2)
        return d

    def test_plan_join_offloads_most_loaded(self):
        d = self.overloaded_directory()
        d.admit(4)
        plans = MigrationPlanner(d).plan_join(4)
        assert [(p.node, p.from_buddy, p.to_buddy) for p in plans] == [(1, 0, 4)]
        assert plans[0].reason == "join"

    def test_plan_join_balanced_pool_moves_nothing(self):
        d = BuddyDirectory(Topology(6, 2), nodes=[0, 1, 2, 3])
        d.admit(4)
        assert MigrationPlanner(d).plan_join(4) == []

    def test_plan_join_respects_capacity_gate(self):
        d = self.overloaded_directory()
        d.admit(4)
        planner = MigrationPlanner(d, fits=lambda src, cand, pending: False)
        assert planner.plan_join(4) == []

    def test_plan_join_never_plans_a_source_twice(self):
        # a donor far above the newcomer must donate repeatedly; the
        # directory is not mutated until cutover, so the planner has to
        # exclude already-planned sources itself or it re-picks the
        # same one (duplicate plans -> doubled traffic, one always
        # aborts stale after the other's cutover)
        d = BuddyDirectory(Topology(8, 2), nodes=[0, 1, 2, 3, 4, 5])
        for n in [1, 2, 3, 4, 5]:
            d.rebind(n, 0)  # load(0) == 5
        d.admit(6)
        plans = MigrationPlanner(d).plan_join(6)
        sources = [p.node for p in plans]
        assert len(sources) == len(set(sources))
        # 5 vs 0 rebalances 5->4->3 donations: two distinct moves
        assert len(plans) == 2
        assert all(p.from_buddy == 0 and p.to_buddy == 6 for p in plans)

    def test_plan_drain_evacuates_every_orphan(self):
        d = BuddyDirectory(Topology(6, 2), nodes=[0, 1, 2, 3])
        d.retire(1)
        plans = MigrationPlanner(d).plan_drain(1)
        # node 0 streams to 1; best candidate is 3 (cross-rack, least
        # loaded after excluding the draining node)
        assert [(p.node, p.from_buddy, p.to_buddy) for p in plans] == [(0, 1, 3)]
        assert plans[0].reason == "drain"

    def test_plan_drain_skips_unplaceable_orphans(self):
        d = BuddyDirectory(Topology(6, 2), nodes=[0, 1, 2, 3])
        d.retire(1)
        planner = MigrationPlanner(d, fits=lambda src, cand, pending: False)
        assert planner.plan_drain(1) == []

    def test_capacity_gate_sees_in_flight_moves(self):
        # node 1 hosts two sources; a gate admitting one source per
        # candidate must spread the evacuation, not stack both moves on
        # the same best candidate (each gated as if it were alone)
        d = BuddyDirectory(Topology(6, 2), nodes=[0, 1, 2, 3])
        d.rebind(2, 1)  # 1 now hosts 0 (static) and 2
        d.retire(1)
        planner = MigrationPlanner(d, fits=lambda src, cand, pending: not pending)
        plans = planner.plan_drain(1)
        assert len(plans) == 2
        targets = [p.to_buddy for p in plans]
        assert len(targets) == len(set(targets))

    def test_planner_never_mutates_directory(self):
        d = self.overloaded_directory()
        d.admit(4)
        before = dict(d._buddy)
        MigrationPlanner(d).plan_join(4)
        MigrationPlanner(d).plan_drain(0)
        assert d._buddy == before
        assert d.migrations == []


# ---------------------------------------------------------------------------
# SloGuard.
# ---------------------------------------------------------------------------


class TestSloGuard:
    def test_thresholds(self):
        g = SloGuard(latency_slo=1.0, risk_fraction=0.8, throttle_fraction=0.5)
        g.observe(0.3)
        assert not g.throttled and not g.at_risk
        g.observe(0.6)
        assert g.throttled and not g.at_risk
        g.observe(0.9)
        assert g.throttled and g.at_risk
        assert g.within_slo
        g.observe(1.2)
        assert not g.within_slo
        assert g.max_latency == 1.2

    def test_reacts_to_latest_observation(self):
        g = SloGuard(latency_slo=1.0)
        g.observe(0.95)
        assert g.at_risk
        g.observe(0.1)
        assert not g.at_risk  # recovered: migration may resume

    def test_disabled_without_slo(self):
        g = SloGuard()  # latency_slo=inf
        g.observe(1e9)
        assert not g.throttled and not g.at_risk
        assert g.within_slo
