"""Property-based tests of the trace round-trip and replay accounting.

Two invariants carry the whole replay design:

* **lossless serialization** — any event stream written through
  :class:`JsonlSink` and read back through :func:`read_trace` is the
  *identical* typed stream (the differential oracle is meaningless if
  the wire format can drop precision or fields);
* **prefix monotonicity** — faithful accounting over a prefix of a
  trace is a prefix of the accounting: byte counters never decrease
  as events append, and the commit ordering of a prefix is a prefix
  of the full ordering.  This is what makes mid-run traces (a capture
  cut short) safely replayable.
"""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.metrics.trace import (
    TRACE_VERSION,
    AutotuneSwitchEvent,
    ChunkCopiedEvent,
    CommitEvent,
    FailoverEvent,
    JsonlSink,
    PolicyDecisionEvent,
    RetryEvent,
    event_from_record,
    read_trace,
)
from repro.replay import accounting_from_events

pytestmark = pytest.mark.replay

# -- event strategies -------------------------------------------------------

times = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
actors = st.sampled_from(["r0", "r1", "r0:precopy", "n0:helper"])
chunks = st.sampled_from(["heap-0", "heap-1", "stack", "globals"])
sizes = st.integers(min_value=0, max_value=1 << 40)

decision_events = st.builds(
    PolicyDecisionEvent,
    t=times,
    actor=actors,
    chunk=chunks,
    decision=st.sampled_from(["precopy", "copy_at_checkpoint", "skip"]),
    policy=st.sampled_from(["none", "cpc", "dcpc", "dcpcp"]),
)
copy_events = st.builds(
    ChunkCopiedEvent,
    t=times,
    actor=actors,
    chunk=chunks,
    nbytes=sizes,
    start=times,
    stream=st.sampled_from(["local", "remote"]),
    phase=st.sampled_from(["coordinated", "precopy"]),
    destination=st.sampled_from(["", "nvm", "pfs"]),
    pages=st.integers(0, 1 << 20),
    bytes_saved=sizes,
)
commit_events = st.builds(
    CommitEvent,
    t=times,
    actor=actors,
    chunks_committed=st.integers(0, 4096),
    bytes_committed=sizes,
    flush_cost=st.floats(0.0, 10.0, allow_nan=False),
    destination=st.sampled_from(["", "nvm"]),
)
retry_events = st.builds(
    RetryEvent,
    t=times,
    actor=actors,
    target=st.sampled_from(["n0", "n1"]),
    attempt=st.integers(1, 10),
    delay=st.floats(0.0, 60.0, allow_nan=False),
    reason=st.sampled_from(["", "timeout", "reset"]),
)
failover_events = st.builds(
    FailoverEvent,
    t=times,
    actor=actors,
    from_target=st.sampled_from(["n0", "n1"]),
    to_target=st.sampled_from(["n2", "n3"]),
    reason=st.sampled_from(["", "buddy died"]),
)
autotune_events = st.builds(
    AutotuneSwitchEvent,
    t=times,
    actor=actors,
    from_policy=st.sampled_from(["none", "cpc", "dcpc", "dcpcp"]),
    to_policy=st.sampled_from(["none", "cpc", "dcpc", "dcpcp"]),
    reason=st.sampled_from(["bandit", "nudge"]),
    reward=st.floats(-1e6, 0.0, allow_nan=False),
)
any_event = st.one_of(
    decision_events, copy_events, commit_events,
    retry_events, failover_events, autotune_events,
)
event_streams = st.lists(any_event, max_size=60)


def round_trip(events, meta=None):
    buf = io.StringIO()
    sink = JsonlSink(buf, meta=meta)
    for ev in events:
        sink.handle(ev)
    buf.seek(0)
    return read_trace(buf)


# -- lossless serialization -------------------------------------------------


@given(events=event_streams)
@settings(max_examples=150, deadline=None)
def test_jsonl_round_trip_is_identity(events):
    meta = {"config": {"mode": "dcpcp", "nvm_gbps": 2.0}}
    got_meta, got = round_trip(events, meta=meta)
    assert got == events
    assert got_meta == meta


@given(event=any_event)
@settings(max_examples=150, deadline=None)
def test_record_round_trip_is_identity(event):
    rec = json.loads(json.dumps(event.to_record()))
    assert event_from_record(rec) == event


# -- prefix monotonicity ----------------------------------------------------


@given(events=event_streams, data=st.data())
@settings(max_examples=100, deadline=None)
def test_accounting_is_prefix_monotone(events, data):
    cut = data.draw(st.integers(0, len(events)), label="cut")
    full = accounting_from_events(events)
    part = accounting_from_events(events[:cut])
    assert part.bytes_copied <= full.bytes_copied
    assert part.precopy_bytes <= full.precopy_bytes
    assert part.bytes_saved <= full.bytes_saved
    assert part.remote_round_bytes <= full.remote_round_bytes
    assert part.remote_stream_bytes <= full.remote_stream_bytes
    # the prefix's commits are exactly the first commits of the full
    # stream, in emission order
    assert [c.key for c in part.commits] == [
        c.key for c in full.commits[: len(part.commits)]
    ]


@given(events=event_streams)
@settings(max_examples=100, deadline=None)
def test_accounting_conserves_copy_bytes(events):
    acc = accounting_from_events(events)
    copied = [e for e in events if isinstance(e, ChunkCopiedEvent)]
    assert acc.total_nvm_bytes + acc.remote_round_bytes + acc.remote_stream_bytes == sum(
        e.nbytes for e in copied
    )
    assert acc.chunks_copied + acc.precopy_copies == sum(
        1 for e in copied if e.stream == "local"
    )


# -- schema guards ----------------------------------------------------------


def test_reader_rejects_headerless_stream():
    buf = io.StringIO('{"kind": "commit", "t": 1.0}\n')
    with pytest.raises(ConfigError, match="trace.header"):
        read_trace(buf)


def test_reader_rejects_future_version():
    buf = io.StringIO(
        json.dumps(
            {"kind": "trace.header", "trace_version": TRACE_VERSION + 1, "meta": {}}
        )
        + "\n"
    )
    with pytest.raises(ConfigError, match="trace_version"):
        read_trace(buf)


def test_reader_rejects_unknown_kind_and_fields():
    with pytest.raises(ConfigError, match="unknown trace event kind"):
        event_from_record({"kind": "no.such.event", "t": 0.0, "actor": "r0"})
    rec = CommitEvent(
        t=1.0, actor="r0", chunks_committed=1, bytes_committed=1, flush_cost=0.0
    ).to_record()
    rec["surprise"] = 1
    with pytest.raises(ConfigError, match="unknown fields"):
        event_from_record(rec)


def test_reader_rejects_empty_stream():
    with pytest.raises(ConfigError, match="empty trace"):
        read_trace(io.StringIO(""))
