"""Cross-module integration tests: the paper's headline behaviours,
end-to-end, on small configurations."""

import numpy as np
import pytest

from repro.apps import LammpsModel, SyntheticModel
from repro.baselines import async_noprecopy_config, precopy_config
from repro.cluster import Cluster, ClusterRunner
from repro.config import ClusterConfig, FailureConfig, PrecopyPolicy
from repro.core import NVMCheckpoint
from repro.memory import FileStore, InMemoryStore
from repro.units import GB_per_sec, MB


class TestFunctionalLifecycle:
    """A small 'real application' driving the public API with real
    data through multiple checkpoint/crash/restart generations."""

    def test_three_generations(self, tmp_path):
        store = FileStore(str(tmp_path / "nvm"))
        app = NVMCheckpoint("sim", store=store)
        state = app.nvalloc("state", MB(1))
        history = []
        rng = np.random.default_rng(0)
        for gen in range(3):
            data = rng.random(MB(1) // 8)
            state.write(0, data)
            app.nvchkptall()
            history.append(data)
            # post-checkpoint writes that must be lost
            state.write(0, np.zeros(100))
            app.crash()
            app, report = NVMCheckpoint.restart("sim", store)
            state = app.chunk("state")
            assert np.array_equal(state.view(np.float64), history[-1])

    def test_growing_checkpoint_with_nvrealloc(self, store):
        app = NVMCheckpoint("sim", store=store)
        c = app.nvalloc("grid", MB(1))
        c.write(0, np.ones(MB(1) // 8))
        app.nvchkptall()
        app.nvrealloc("grid", MB(2))
        c2 = app.chunk("grid")
        c2.write(MB(1), np.full(MB(1) // 8, 2.0))
        app.nvchkptall()
        app.crash()
        app2, _ = NVMCheckpoint.restart("sim", store)
        v = app2.chunk("grid").view(np.float64)
        assert v[0] == 1.0 and v[-1] == 2.0

    def test_checkpoint_cost_reflects_nvm_bandwidth(self, store):
        """NVM-as-memory still pays NVM write bandwidth: the virtual
        cost of a checkpoint matches Table-I arithmetic."""
        app = NVMCheckpoint("sim", store=store)
        app.nvalloc("x", MB(64))
        stats = app.nvchkptall()
        # 64 MB at the single-core NVM rate (512 MB/s) ~ 0.125 s
        assert 0.08 <= stats.duration <= 0.3


class TestPaperHeadlines:
    """The three §VI headline claims, at reduced scale (full scale runs
    live in benchmarks/)."""

    @pytest.fixture(scope="class")
    def arms(self):
        def run(cfg):
            cluster = Cluster(
                ClusterConfig(nodes=4), nvm_write_bandwidth=GB_per_sec(1.0), seed=1
            )
            app = LammpsModel(checkpoint_mb_per_rank=100.0)
            app.iteration_compute_time = 20.0
            cluster.build(app, cfg, ranks_per_node=6)
            return ClusterRunner(cluster).run(6)

        return run(precopy_config(20, 60)), run(async_noprecopy_config(20, 60))

    def test_precopy_cuts_execution_time(self, arms):
        pre, nop = arms
        assert pre.total_time < nop.total_time

    def test_precopy_cuts_coordinated_checkpoint_time(self, arms):
        pre, nop = arms
        assert pre.local_ckpt_time_avg < 0.6 * nop.local_ckpt_time_avg

    def test_precopy_cuts_peak_interconnect_usage(self, arms):
        pre, nop = arms
        assert pre.fabric_ckpt_peak_window_bytes < 0.8 * nop.fabric_ckpt_peak_window_bytes

    def test_helper_cpu_roughly_doubles(self, arms):
        pre, nop = arms
        ratio = pre.helper_utilization / nop.helper_utilization
        assert 1.3 <= ratio <= 3.5

    def test_remote_volume_only_modestly_higher(self, arms):
        pre, nop = arms
        pre_total = pre.remote_round_bytes + pre.remote_precopy_bytes
        nop_total = nop.remote_round_bytes + nop.remote_precopy_bytes
        assert pre_total <= 1.6 * nop_total


class TestGTCCheckpointShrinks:
    def test_write_once_chunks_leave_later_checkpoints(self):
        """Fig. 8: GTC's write-once large chunks are checkpointed once;
        dirty tracking shrinks later checkpoints vs the baseline."""
        from repro.apps import GTCModel

        def run(cfg):
            cluster = Cluster(
                ClusterConfig(nodes=2), nvm_write_bandwidth=GB_per_sec(1.0), seed=1
            )
            app = GTCModel(checkpoint_mb_per_rank=100.0, small_chunks=8)
            app.iteration_compute_time = 20.0
            cluster.build(app, cfg, ranks_per_node=4, with_remote=False)
            return ClusterRunner(cluster).run(4)

        pre = run(precopy_config(20, 60))
        nop = run(async_noprecopy_config(20, 60))
        # baseline re-copies everything every time; tracking skips the
        # write-once equilibrium chunk after iteration 0
        assert pre.total_nvm_bytes < nop.total_nvm_bytes


class TestFailureStory:
    def test_hard_failure_data_flow_end_to_end(self):
        """After a hard failure the replacement node's ranks recover
        exactly the remotely committed iteration."""
        fc = FailureConfig(mtbf_local=1e9, mtbf_remote=220.0, seed=13)
        cluster = Cluster(ClusterConfig(nodes=2), nvm_write_bandwidth=GB_per_sec(2.0), seed=13)
        app = SyntheticModel(
            checkpoint_mb_per_rank=40, chunk_mb=10, iteration_compute_time=20.0
        )
        cluster.build(app, precopy_config(20, 60), ranks_per_node=2)
        runner = ClusterRunner(cluster, failure_config=fc)
        res = runner.run(5)
        assert res.hard_failures >= 1
        assert res.iterations == 5
        # replacement hardware exists (incarnation bumped somewhere)
        assert any(n.incarnation > 0 for n in cluster.nodes)

    def test_mixed_failures_long_run(self):
        fc = FailureConfig(mtbf_local=200.0, mtbf_remote=800.0, seed=9)
        cluster = Cluster(ClusterConfig(nodes=2), nvm_write_bandwidth=GB_per_sec(2.0), seed=9)
        app = SyntheticModel(
            checkpoint_mb_per_rank=20, chunk_mb=10, iteration_compute_time=15.0
        )
        cluster.build(app, precopy_config(15, 45), ranks_per_node=2)
        res = ClusterRunner(cluster, failure_config=fc).run(8)
        assert res.iterations == 8
        assert res.soft_failures + res.hard_failures >= 1
        assert res.total_time > res.ideal_time
