"""The background pre-copy engine: eligibility by policy, staleness,
redundancy accounting, pause/drain."""

import pytest

from repro.alloc import NVAllocator
from repro.config import PrecopyPolicy
from repro.core import LocalCheckpointer, PrecopyEngine, make_standalone_context
from repro.core.prediction import PredictionTable
from repro.core.threshold import ThresholdEstimator
from repro.errors import SimulationError
from repro.units import MB


def make_rig(mode="cpc", n_chunks=2, chunk_mb=10):
    ctx = make_standalone_context(name="pc")
    alloc = NVAllocator("p0", ctx.nvmm, ctx.dram, phantom=True, clock=lambda: ctx.engine.now)
    chunks = [alloc.nvalloc(f"c{i}", MB(chunk_mb)) for i in range(n_chunks)]
    threshold = ThresholdEstimator(ctx.effective_nvm_bw_per_core()) if mode in ("dcpc", "dcpcp") else None
    prediction = PredictionTable() if mode == "dcpcp" else None
    engine = PrecopyEngine(
        ctx,
        chunks=alloc.persistent_chunks,
        policy=PrecopyPolicy(mode=mode),
        threshold=threshold,
        prediction=prediction,
    )
    return ctx, alloc, chunks, engine


class TestCPC:
    def test_copies_dirty_chunks_in_background(self):
        ctx, alloc, chunks, engine = make_rig("cpc")
        ctx.engine.process(engine.run())
        ctx.engine.run(until=60.0)
        assert all(not c.dirty_local for c in chunks)
        assert engine.stats.copies == len(chunks)
        assert engine.stats.bytes_copied == sum(c.nbytes for c in chunks)

    def test_largest_chunk_first(self):
        ctx = make_standalone_context(name="pc")
        alloc = NVAllocator("p0", ctx.nvmm, ctx.dram, phantom=True)
        small = alloc.nvalloc("small", MB(1))
        big = alloc.nvalloc("big", MB(50))
        order = []
        engine = PrecopyEngine(
            ctx, chunks=alloc.persistent_chunks, policy=PrecopyPolicy(mode="cpc"),
            finalize_fn=lambda c: order.append(c.name),
        )
        ctx.engine.process(engine.run())
        ctx.engine.run(until=30.0)
        assert order[0] == "big"

    def test_redirtied_chunk_recopied(self):
        ctx, alloc, chunks, engine = make_rig("cpc", n_chunks=1)
        proc = ctx.engine.process(engine.run())

        def app():
            yield ctx.engine.timeout(5.0)  # let the first copy land
            chunks[0].touch()
            yield ctx.engine.timeout(5.0)

        ctx.engine.process(app())
        ctx.engine.run(until=20.0)
        assert engine.stats.copies == 2
        assert engine.stats.redundant_copies == 1
        assert engine.stats.faults_induced == 1

    def test_stale_copy_detected(self):
        """A write landing mid-copy leaves the chunk dirty."""
        ctx, alloc, chunks, engine = make_rig("cpc", n_chunks=1, chunk_mb=100)
        ctx.engine.process(engine.run())

        def app():
            yield ctx.engine.timeout(0.05)  # copy of 100MB in flight
            chunks[0].touch()

        ctx.engine.process(app())
        ctx.engine.run(until=30.0)
        assert engine.stats.stale_copies >= 1
        # the final state is still clean: the engine retried
        assert not chunks[0].dirty_local

    def test_protection_applied_after_copy(self):
        ctx, alloc, chunks, engine = make_rig("cpc", n_chunks=1)
        ctx.engine.process(engine.run())
        ctx.engine.run(until=10.0)
        assert chunks[0].protected

    def test_non_persistent_chunks_ignored(self):
        ctx = make_standalone_context(name="pc")
        alloc = NVAllocator("p0", ctx.nvmm, ctx.dram, phantom=True)
        alloc.nvalloc("scratch", MB(1), pflag=False)
        engine = PrecopyEngine(
            ctx, chunks=alloc.chunks, policy=PrecopyPolicy(mode="cpc")
        )
        ctx.engine.process(engine.run())
        ctx.engine.run(until=5.0)
        assert engine.stats.copies == 0


class TestDelayedModes:
    def test_dcpc_idle_during_learning(self):
        ctx, alloc, chunks, engine = make_rig("dcpc")
        ctx.engine.process(engine.run())
        ctx.engine.run(until=30.0)
        assert engine.stats.copies == 0  # no threshold learned yet

    def test_dcpc_starts_after_threshold(self):
        ctx, alloc, chunks, engine = make_rig("dcpc", chunk_mb=1)
        assert engine.threshold is not None
        engine.threshold.observe_interval(10.0, MB(2))
        engine.begin_interval()
        ctx.engine.process(engine.run())
        ctx.engine.run(until=engine.threshold.threshold() - 0.5)
        assert engine.stats.copies == 0
        ctx.engine.run(until=11.0)
        assert engine.stats.copies == 2

    def test_dcpcp_requires_prediction(self):
        ctx = make_standalone_context(name="pc")
        alloc = NVAllocator("p0", ctx.nvmm, ctx.dram, phantom=True)
        with pytest.raises(SimulationError):
            PrecopyEngine(
                ctx, chunks=alloc.persistent_chunks,
                policy=PrecopyPolicy(mode="dcpcp"),
                threshold=ThresholdEstimator(1.0),
            )

    def test_dcpc_requires_threshold(self):
        ctx = make_standalone_context(name="pc")
        alloc = NVAllocator("p0", ctx.nvmm, ctx.dram, phantom=True)
        with pytest.raises(SimulationError):
            PrecopyEngine(
                ctx, chunks=alloc.persistent_chunks, policy=PrecopyPolicy(mode="dcpc")
            )

    def test_dcpcp_withholds_hot_chunk(self):
        """A hot chunk predicted to be modified 3x per interval is not
        pre-copied until its 3rd modification arrives."""
        ctx, alloc, chunks, engine = make_rig("dcpcp", n_chunks=1, chunk_mb=1)
        hot = chunks[0]
        engine.wire_chunks()
        assert engine.threshold is not None and engine.prediction is not None
        # learning interval: 3 modifications observed
        engine.prediction.begin_interval()
        for _ in range(3):
            hot.touch()
        engine.prediction.end_interval()
        engine.threshold.observe_interval(10.0, MB(1))
        engine.begin_interval()
        ctx.engine.process(engine.run())

        def app():
            yield ctx.engine.timeout(9.0)  # well past T_p
            hot.touch()
            yield ctx.engine.timeout(0.5)
            assert engine.stats.copies == 0  # 1 of 3 mods seen
            hot.touch()
            yield ctx.engine.timeout(0.5)
            assert engine.stats.copies == 0
            hot.touch()  # 3rd mod: now eligible
            yield ctx.engine.timeout(1.0)

        proc = ctx.engine.process(app())
        ctx.engine.run(until=30.0)
        assert proc.ok
        assert engine.stats.copies == 1


class TestLifecycle:
    def test_pause_blocks_copies(self):
        ctx, alloc, chunks, engine = make_rig("cpc")
        engine.pause()
        ctx.engine.process(engine.run())
        ctx.engine.run(until=10.0)
        assert engine.stats.copies == 0
        engine.resume()
        ctx.engine.run(until=20.0)
        assert engine.stats.copies == len(chunks)

    def test_drain_waits_for_inflight(self):
        ctx, alloc, chunks, engine = make_rig("cpc", n_chunks=1, chunk_mb=200)
        ctx.engine.process(engine.run())

        def coordinator():
            yield ctx.engine.timeout(0.05)  # big copy in flight
            engine.pause()
            yield from engine.drain()
            return ctx.engine.now

        proc = ctx.engine.process(coordinator())
        ctx.engine.run(until=60.0)
        # drain returned only after the 200MB copy finished (~0.4s+)
        assert proc.value > 0.3

    def test_stop_ends_run(self):
        ctx, alloc, chunks, engine = make_rig("cpc")
        proc = ctx.engine.process(engine.run())
        engine.stop()
        ctx.engine.run(until=5.0)
        assert proc.triggered

    def test_double_run_rejected(self):
        ctx, alloc, chunks, engine = make_rig("cpc")
        ctx.engine.process(engine.run())
        bad = ctx.engine.process(engine.run())
        ctx.engine.run(until=0.1)
        assert isinstance(bad.exception, SimulationError)

    def test_begin_interval_settles_prediction_outcomes(self):
        ctx, alloc, chunks, engine = make_rig("dcpcp", n_chunks=1)
        assert engine.prediction is not None
        engine.wire_chunks()
        engine._pending_clean[chunks[0].chunk_id] = chunks[0]
        engine.begin_interval()
        assert engine.prediction.accuracy() == 1.0  # recorded as a hit
