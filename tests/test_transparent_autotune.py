"""Transparent checkpointing and the interval auto-tuner."""

import pytest

from repro.core import IntervalTuner, TransparentCheckpointer, make_standalone_context
from repro.errors import CheckpointError
from repro.units import GB, MB


class TestTransparent:
    def test_segments_cover_the_address_space(self, ctx):
        t = TransparentCheckpointer(ctx, "p0", GB(1))
        assert sum(s.nbytes for s in t.segments) == GB(1)
        assert t.checkpoint_bytes == GB(1)
        assert len(t.segments) == 16  # 64 MB segments

    def test_small_space_single_segment(self, ctx):
        t = TransparentCheckpointer(ctx, "p0", MB(10))
        assert len(t.segments) == 1

    def test_empty_space_rejected(self, ctx):
        with pytest.raises(CheckpointError):
            TransparentCheckpointer(ctx, "p0", 0)

    def test_checkpoint_copies_everything(self, ctx):
        t = TransparentCheckpointer(ctx, "p0", MB(256))
        stats = t.checkpoint()
        assert stats.bytes_copied == MB(256)
        # and again: no dirty tracking without application knowledge
        t.mark_activity()
        stats2 = t.checkpoint()
        assert stats2.bytes_copied == MB(256)

    def test_transparent_bigger_than_declared(self, ctx):
        """The §II argument: the address space dwarfs the declared
        checkpoint set."""
        from repro.alloc import NVAllocator
        from repro.config import PrecopyPolicy
        from repro.core import LocalCheckpointer

        declared = NVAllocator("app", ctx.nvmm, ctx.dram, phantom=True)
        declared.nvalloc("state", MB(100))
        app_ck = LocalCheckpointer(ctx, declared, PrecopyPolicy(mode="none"))
        app_stats = app_ck.checkpoint()

        t = TransparentCheckpointer(ctx, "app2", MB(300))
        t_stats = t.checkpoint()
        assert t_stats.bytes_copied == 3 * app_stats.bytes_copied
        assert t_stats.duration > app_stats.duration

    def test_page_tracking_mode_faults_per_page(self, ctx):
        from repro.units import PAGE_SIZE

        t = TransparentCheckpointer(ctx, "p0", MB(1), page_tracking=True)
        t.checkpoint()  # protects segments
        faults = t.mark_activity(MB(1))
        assert faults == MB(1) // PAGE_SIZE

    def test_mark_activity_partial(self, ctx):
        t = TransparentCheckpointer(ctx, "p0", MB(256))
        t.checkpoint()
        t.mark_activity(MB(64))  # dirties only the first segment
        stats = t.checkpoint()
        assert stats.bytes_copied == MB(256)  # policy NONE: full copy anyway

    def test_history_accumulates(self, ctx):
        t = TransparentCheckpointer(ctx, "p0", MB(64))
        t.checkpoint()
        t.checkpoint()
        assert len(t.history) == 2
        assert t.total_bytes_to_nvm == 2 * MB(64)


class TestIntervalTuner:
    def test_holds_initial_until_a_checkpoint_is_measured(self):
        tuner = IntervalTuner(40.0)
        assert tuner.recommended_interval() == 40.0

    def test_mtbf_starts_at_prior(self):
        tuner = IntervalTuner(40.0, prior_mtbf=1000.0)
        assert tuner.mtbf_estimate() == pytest.approx(1000.0)

    def test_mtbf_converges_to_observations(self):
        tuner = IntervalTuner(40.0, prior_mtbf=1000.0, prior_weight=1.0)
        # 20 failures over 2000 s -> observed MTBF 100
        for i in range(1, 21):
            tuner.observe_failure(i * 100.0)
        est = tuner.mtbf_estimate()
        assert est == pytest.approx((1000.0 + 2000.0) / 21, rel=1e-9)
        assert est < 200.0

    def test_recommendation_tracks_young(self):
        tuner = IntervalTuner(40.0, prior_mtbf=800.0, smoothing=1.0)
        tuner.observe_checkpoint(2.0)
        from repro.models import young_interval

        assert tuner.recommended_interval() == pytest.approx(
            young_interval(2.0, 800.0)
        )

    def test_daly_variant(self):
        tuner = IntervalTuner(40.0, prior_mtbf=800.0, smoothing=1.0, use_daly=True)
        tuner.observe_checkpoint(2.0)
        from repro.models import daly_interval

        assert tuner.recommended_interval() == pytest.approx(daly_interval(2.0, 800.0))

    def test_clamping(self):
        tuner = IntervalTuner(40.0, prior_mtbf=1e9, smoothing=1.0, max_interval=120.0)
        tuner.observe_checkpoint(10.0)
        assert tuner.recommended_interval() == 120.0
        tuner2 = IntervalTuner(40.0, prior_mtbf=1.0, smoothing=1.0, min_interval=5.0)
        tuner2.observe_checkpoint(10.0)
        assert tuner2.recommended_interval() == 5.0

    def test_more_failures_shorter_interval(self):
        calm = IntervalTuner(40.0, prior_mtbf=3600.0, smoothing=1.0)
        calm.observe_checkpoint(2.0)
        calm.observe_progress(4000.0)
        frantic = IntervalTuner(40.0, prior_mtbf=3600.0, smoothing=1.0)
        frantic.observe_checkpoint(2.0)
        for i in range(1, 41):
            frantic.observe_failure(i * 100.0)
        assert frantic.recommended_interval() < calm.recommended_interval()

    def test_checkpoint_cost_smoothing(self):
        tuner = IntervalTuner(40.0, smoothing=0.5)
        tuner.observe_checkpoint(4.0)
        tuner.observe_checkpoint(2.0)
        assert tuner.checkpoint_cost == pytest.approx(3.0)
        tuner.observe_checkpoint(0.0)  # ignored
        assert tuner.checkpoint_cost == pytest.approx(3.0)

    def test_smoothed_application_avoids_thrash(self):
        tuner = IntervalTuner(40.0, prior_mtbf=3600.0, smoothing=0.3)
        tuner.observe_checkpoint(0.5)
        first = tuner.recommended_interval()
        # one recommendation moves only 30% toward the target
        assert abs(first - 40.0) < abs(
            IntervalTuner(40.0, prior_mtbf=3600.0, smoothing=1.0)
            .recommended_interval() - 40.0
        ) or first != 40.0

    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalTuner(0.0)
        with pytest.raises(ValueError):
            IntervalTuner(40.0, smoothing=0.0)
        with pytest.raises(ValueError):
            IntervalTuner(40.0, min_interval=10.0, max_interval=5.0)
