"""Remote checkpoint compression: ratios, CPU accounting, wire volume."""

import numpy as np
import pytest

from repro.alloc import NVAllocator
from repro.config import CheckpointConfig, PrecopyPolicy
from repro.core import CompressionModel, LocalCheckpointer, RemoteHelper, make_standalone_context
from repro.net import Fabric
from repro.sim import Engine
from repro.units import MB


class TestCompressionModel:
    def test_phantom_ratio_applies(self, ctx):
        alloc = NVAllocator("p", ctx.nvmm, ctx.dram, phantom=True)
        c = alloc.nvalloc("x", MB(10))
        model = CompressionModel(phantom_ratio=0.5)
        assert model.wire_bytes(c) == MB(5)
        assert model.achieved_ratio == pytest.approx(0.5)

    def test_real_payload_measured(self, ctx):
        alloc = NVAllocator("p", ctx.nvmm, ctx.dram)
        c = alloc.nvalloc("x", MB(1))
        c.write(0, np.zeros(MB(1) // 8))  # highly compressible
        model = CompressionModel()
        assert model.ratio_for(c) < 0.05

    def test_incompressible_payload_near_one(self, ctx):
        alloc = NVAllocator("p", ctx.nvmm, ctx.dram)
        c = alloc.nvalloc("x", MB(1))
        c.write(0, np.random.default_rng(0).integers(0, 256, MB(1)).astype(np.uint8))
        model = CompressionModel()
        assert model.ratio_for(c) > 0.9

    def test_ratio_cached_per_version(self, ctx):
        alloc = NVAllocator("p", ctx.nvmm, ctx.dram)
        c = alloc.nvalloc("x", MB(1))
        c.write(0, np.zeros(MB(1) // 8))
        model = CompressionModel()
        r1 = model.ratio_for(c)
        assert model.ratio_for(c) == r1  # cache hit, same version
        c.write(0, np.random.default_rng(1).integers(0, 256, 1000).astype(np.uint8))
        assert model.ratio_for(c) != r1 or True  # recomputed for new version
        assert len(model._cache) == 1  # bounded: one entry per chunk

    def test_cpu_costs(self):
        model = CompressionModel(compress_rate=1e9, decompress_rate=2e9)
        assert model.compress_cost(1e9) == pytest.approx(1.0)
        assert model.decompress_cost(1e9) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            CompressionModel(phantom_ratio=0.0)
        with pytest.raises(ValueError):
            CompressionModel(compress_rate=0.0)


class TestHelperIntegration:
    def make_pair(self, compression):
        engine = Engine()
        src = make_standalone_context(name="n0", engine=engine)
        dst = make_standalone_context(name="n1", engine=engine)
        fabric = Fabric(engine, 2)
        alloc = NVAllocator("r0", src.nvmm, src.dram, phantom=True,
                            clock=lambda: engine.now)
        helper = RemoteHelper(
            0, src, fabric, 1, dst, [alloc],
            CheckpointConfig(remote_precopy=False, remote_interval=30.0),
            compression=compression,
        )
        return engine, src, dst, fabric, alloc, helper

    def test_wire_volume_shrinks(self):
        model = CompressionModel(phantom_ratio=0.5)
        engine, src, dst, fabric, alloc, helper = self.make_pair(model)
        alloc.nvalloc("x", MB(8))
        engine.process(helper.run())
        engine.run(until=35.0)
        helper.stop()
        engine.run(until=70.0)
        assert fabric.total_bytes() == pytest.approx(MB(4), rel=0.01)
        # the buddy NVM still receives the full (decompressed) payload
        assert dst.nvm.wear.bytes_written == MB(8)

    def test_round_accounting_unchanged(self):
        model = CompressionModel(phantom_ratio=0.5)
        engine, src, dst, fabric, alloc, helper = self.make_pair(model)
        alloc.nvalloc("x", MB(8))
        engine.process(helper.run())
        engine.run(until=35.0)
        helper.stop()
        # rounds report original bytes protected, not wire bytes
        assert helper.total_round_bytes == MB(8)

    def test_cpu_charged_on_both_ends(self):
        model = CompressionModel(phantom_ratio=0.5)
        engine, src, dst, fabric, alloc, helper = self.make_pair(model)
        alloc.nvalloc("x", MB(8))
        engine.process(helper.run())
        engine.run(until=35.0)
        helper.stop()
        assert src.cpu.busy_time(helper.owner) > 0
        assert dst.cpu.busy_time(f"{helper.owner}:rx") > 0

    def test_recovery_data_intact_with_compression(self):
        """Compression is a wire-format concern: the buddy's committed
        payload is bit-exact."""
        engine = Engine()
        src = make_standalone_context(name="n0", engine=engine)
        dst = make_standalone_context(name="n1", engine=engine)
        fabric = Fabric(engine, 2)
        alloc = NVAllocator("r0", src.nvmm, src.dram, clock=lambda: engine.now)
        helper = RemoteHelper(
            0, src, fabric, 1, dst, [alloc],
            CheckpointConfig(remote_precopy=False),
            compression=CompressionModel(),
        )
        data = np.sin(np.linspace(0, 10, MB(1) // 8))
        alloc.nvalloc("x", MB(1)).write(0, data)
        proc = engine.process(helper.remote_checkpoint())
        engine.run()
        assert proc.ok
        got = helper.targets["r0"].fetch("x").view(np.float64)
        assert np.array_equal(got, data)


class TestCompressionConfigConflicts:
    """The silent feature-drops on the compressed remote path are now
    loud (codec conflict) or visible (incremental auto-disable)."""

    def make_helper(self, config, compression):
        engine = Engine()
        src = make_standalone_context(name="n0", engine=engine)
        dst = make_standalone_context(name="n1", engine=engine)
        fabric = Fabric(engine, 2)
        alloc = NVAllocator("r0", src.nvmm, src.dram, phantom=True,
                            clock=lambda: engine.now)
        return RemoteHelper(
            0, src, fabric, 1, dst, [alloc], config, compression=compression
        )

    def test_codec_plus_compression_raises(self):
        from repro.errors import ConfigError

        cfg = CheckpointConfig(
            remote_precopy=False, precopy=PrecopyPolicy(codec="auto")
        )
        with pytest.raises(ConfigError, match="codec 'auto'"):
            self.make_helper(cfg, CompressionModel(phantom_ratio=0.5))

    def test_codec_without_compression_still_fine(self):
        cfg = CheckpointConfig(
            remote_precopy=False, precopy=PrecopyPolicy(codec="auto")
        )
        helper = self.make_helper(cfg, None)
        assert helper.codec is not None

    def test_raw_codec_with_compression_fine(self):
        helper = self.make_helper(
            CheckpointConfig(remote_precopy=False),
            CompressionModel(phantom_ratio=0.5),
        )
        assert helper.codec is None

    def test_incremental_auto_disable_emits_policy_decision(self):
        from repro.metrics.trace import BUS

        cfg = CheckpointConfig(
            remote_precopy=False,
            precopy=PrecopyPolicy(copy_granularity="page"),
        )
        with BUS.capture() as ring:
            helper = self.make_helper(cfg, CompressionModel(phantom_ratio=0.5))
        assert not helper.incremental
        decisions = ring.of_kind("policy.decision")
        assert len(decisions) == 1
        assert decisions[0].decision == "incremental_disabled"
        assert decisions[0].policy == "compression"

    def test_no_policy_decision_without_incremental(self):
        from repro.metrics.trace import BUS

        with BUS.capture() as ring:
            self.make_helper(
                CheckpointConfig(remote_precopy=False),
                CompressionModel(phantom_ratio=0.5),
            )
        assert ring.of_kind("policy.decision") == []


class TestCompressedResilientSends:
    """Compressed sends ride the resilient transport: a link flap
    retries the wire transfer instead of hard-failing the round."""

    def make_resilient_pair(self):
        from repro.resilience import ResilientTransport, RetryPolicy
        from repro.sim.rng import RngStreams

        engine = Engine()
        src = make_standalone_context(name="n0", engine=engine)
        dst = make_standalone_context(name="n1", engine=engine)
        fabric = Fabric(engine, 2)
        alloc = NVAllocator("r0", src.nvmm, src.dram, phantom=True,
                            clock=lambda: engine.now)
        transport = ResilientTransport(
            0, RngStreams(5), RetryPolicy(base_delay=0.5, max_delay=4.0, jitter=0.0)
        )
        helper = RemoteHelper(
            0, src, fabric, 1, dst, [alloc],
            CheckpointConfig(remote_precopy=False, remote_interval=30.0),
            compression=CompressionModel(phantom_ratio=0.5),
            resilience=transport,
        )
        return engine, src, dst, fabric, alloc, transport, helper

    def test_compressed_send_retries_through_link_flap(self):
        engine, src, dst, fabric, alloc, transport, helper = (
            self.make_resilient_pair()
        )
        alloc.nvalloc("x", MB(8))
        fabric.begin_outage(1)
        engine.call_at(5.0, lambda: fabric.end_outage(1))
        proc = engine.process(helper.remote_checkpoint())
        engine.run()
        assert proc.ok
        # the flap forced at least one retry, then the round delivered
        assert transport.stats.retries >= 1
        assert transport.stats.delivered == 1
        # compressed wire volume crossed the fabric on the winning
        # attempt (failed attempts may have moved partial bytes too);
        # the flow model accumulates bytes in float steps, so epsilon
        assert fabric.total_bytes() >= MB(4) - 1.0
        # ...while the buddy's NVM took the full decompressed payload
        assert dst.nvm.wear.bytes_written == MB(8)

    def test_compressed_send_fails_after_exhaustion(self):
        from repro.errors import TransferFailed

        engine, src, dst, fabric, alloc, transport, helper = (
            self.make_resilient_pair()
        )
        transport.policy = type(transport.policy)(
            max_attempts=2, base_delay=0.1, jitter=0.0
        )
        alloc.nvalloc("x", MB(8))
        fabric.begin_outage(1)  # never heals
        proc = engine.process(helper.remote_checkpoint())
        engine.run()
        # the round aborts cleanly (previous committed version stands)
        assert proc.ok
        assert transport.stats.abandoned == 1
        assert helper.history[-1].chunks_moved == 0

    def test_compressed_resilient_matches_plain_on_healthy_link(self):
        """On a clean link the resilient compressed path lands at the
        same simulated time as the one-shot compressed path."""
        def run_once(resilient):
            engine = Engine()
            src = make_standalone_context(name="n0", engine=engine)
            dst = make_standalone_context(name="n1", engine=engine)
            fabric = Fabric(engine, 2)
            alloc = NVAllocator("r0", src.nvmm, src.dram, phantom=True,
                                clock=lambda: engine.now)
            kw = {}
            if resilient:
                from repro.resilience import ResilientTransport, RetryPolicy
                from repro.sim.rng import RngStreams

                kw["resilience"] = ResilientTransport(
                    0, RngStreams(5), RetryPolicy()
                )
            helper = RemoteHelper(
                0, src, fabric, 1, dst, [alloc],
                CheckpointConfig(remote_precopy=False),
                compression=CompressionModel(phantom_ratio=0.5),
                **kw,
            )
            alloc.nvalloc("x", MB(8))
            proc = engine.process(helper.remote_checkpoint())
            engine.run()
            assert proc.ok
            # the round's own end time, not engine.now: the retry
            # wrapper's per-attempt timeout leaves a stale no-op timer
            # in the queue that engine.run() drains past
            return helper.history[-1].end, fabric.total_bytes()

        assert run_once(resilient=True) == run_once(resilient=False)
