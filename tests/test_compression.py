"""Remote checkpoint compression: ratios, CPU accounting, wire volume."""

import numpy as np
import pytest

from repro.alloc import NVAllocator
from repro.config import CheckpointConfig, PrecopyPolicy
from repro.core import CompressionModel, LocalCheckpointer, RemoteHelper, make_standalone_context
from repro.net import Fabric
from repro.sim import Engine
from repro.units import MB


class TestCompressionModel:
    def test_phantom_ratio_applies(self, ctx):
        alloc = NVAllocator("p", ctx.nvmm, ctx.dram, phantom=True)
        c = alloc.nvalloc("x", MB(10))
        model = CompressionModel(phantom_ratio=0.5)
        assert model.wire_bytes(c) == MB(5)
        assert model.achieved_ratio == pytest.approx(0.5)

    def test_real_payload_measured(self, ctx):
        alloc = NVAllocator("p", ctx.nvmm, ctx.dram)
        c = alloc.nvalloc("x", MB(1))
        c.write(0, np.zeros(MB(1) // 8))  # highly compressible
        model = CompressionModel()
        assert model.ratio_for(c) < 0.05

    def test_incompressible_payload_near_one(self, ctx):
        alloc = NVAllocator("p", ctx.nvmm, ctx.dram)
        c = alloc.nvalloc("x", MB(1))
        c.write(0, np.random.default_rng(0).integers(0, 256, MB(1)).astype(np.uint8))
        model = CompressionModel()
        assert model.ratio_for(c) > 0.9

    def test_ratio_cached_per_version(self, ctx):
        alloc = NVAllocator("p", ctx.nvmm, ctx.dram)
        c = alloc.nvalloc("x", MB(1))
        c.write(0, np.zeros(MB(1) // 8))
        model = CompressionModel()
        r1 = model.ratio_for(c)
        assert model.ratio_for(c) == r1  # cache hit, same version
        c.write(0, np.random.default_rng(1).integers(0, 256, 1000).astype(np.uint8))
        assert model.ratio_for(c) != r1 or True  # recomputed for new version
        assert len(model._cache) == 1  # bounded: one entry per chunk

    def test_cpu_costs(self):
        model = CompressionModel(compress_rate=1e9, decompress_rate=2e9)
        assert model.compress_cost(1e9) == pytest.approx(1.0)
        assert model.decompress_cost(1e9) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            CompressionModel(phantom_ratio=0.0)
        with pytest.raises(ValueError):
            CompressionModel(compress_rate=0.0)


class TestHelperIntegration:
    def make_pair(self, compression):
        engine = Engine()
        src = make_standalone_context(name="n0", engine=engine)
        dst = make_standalone_context(name="n1", engine=engine)
        fabric = Fabric(engine, 2)
        alloc = NVAllocator("r0", src.nvmm, src.dram, phantom=True,
                            clock=lambda: engine.now)
        helper = RemoteHelper(
            0, src, fabric, 1, dst, [alloc],
            CheckpointConfig(remote_precopy=False, remote_interval=30.0),
            compression=compression,
        )
        return engine, src, dst, fabric, alloc, helper

    def test_wire_volume_shrinks(self):
        model = CompressionModel(phantom_ratio=0.5)
        engine, src, dst, fabric, alloc, helper = self.make_pair(model)
        alloc.nvalloc("x", MB(8))
        engine.process(helper.run())
        engine.run(until=35.0)
        helper.stop()
        engine.run(until=70.0)
        assert fabric.total_bytes() == pytest.approx(MB(4), rel=0.01)
        # the buddy NVM still receives the full (decompressed) payload
        assert dst.nvm.wear.bytes_written == MB(8)

    def test_round_accounting_unchanged(self):
        model = CompressionModel(phantom_ratio=0.5)
        engine, src, dst, fabric, alloc, helper = self.make_pair(model)
        alloc.nvalloc("x", MB(8))
        engine.process(helper.run())
        engine.run(until=35.0)
        helper.stop()
        # rounds report original bytes protected, not wire bytes
        assert helper.total_round_bytes == MB(8)

    def test_cpu_charged_on_both_ends(self):
        model = CompressionModel(phantom_ratio=0.5)
        engine, src, dst, fabric, alloc, helper = self.make_pair(model)
        alloc.nvalloc("x", MB(8))
        engine.process(helper.run())
        engine.run(until=35.0)
        helper.stop()
        assert src.cpu.busy_time(helper.owner) > 0
        assert dst.cpu.busy_time(f"{helper.owner}:rx") > 0

    def test_recovery_data_intact_with_compression(self):
        """Compression is a wire-format concern: the buddy's committed
        payload is bit-exact."""
        engine = Engine()
        src = make_standalone_context(name="n0", engine=engine)
        dst = make_standalone_context(name="n1", engine=engine)
        fabric = Fabric(engine, 2)
        alloc = NVAllocator("r0", src.nvmm, src.dram, clock=lambda: engine.now)
        helper = RemoteHelper(
            0, src, fabric, 1, dst, [alloc],
            CheckpointConfig(remote_precopy=False),
            compression=CompressionModel(),
        )
        data = np.sin(np.linspace(0, 10, MB(1) // 8))
        alloc.nvalloc("x", MB(1)).write(0, data)
        proc = engine.process(helper.remote_checkpoint())
        engine.run()
        assert proc.ok
        got = helper.targets["r0"].fetch("x").view(np.float64)
        assert np.array_equal(got, data)
