"""The sweep tool and the facade's background-pre-copy API."""

import csv
import io

import numpy as np
import pytest

from repro.core import NVMCheckpoint
from repro.config import CheckpointConfig, PrecopyPolicy
from repro.tools.sweep import main as sweep_main
from repro.tools.sweep import parse_sweeps, run_sweep
from repro.units import MB

BASE = [
    "--app", "synthetic", "--nodes", "2", "--ranks-per-node", "2",
    "--iterations", "2", "--local-interval", "10", "--remote-interval", "30",
    "--checkpoint-mb", "40", "--chunk-mb", "10", "--no-remote",
]


class TestParseSweeps:
    def test_basic(self):
        axes = parse_sweeps(["nvm-gbps=0.5,1.0", "mode=none,dcpcp"])
        assert axes == [("nvm-gbps", ["0.5", "1.0"]), ("mode", ["none", "dcpcp"])]

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError):
            parse_sweeps(["nvm-gbps"])

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            parse_sweeps(["mode="])


class TestRunSweep:
    def test_cross_product_size(self):
        records = run_sweep(BASE, parse_sweeps(["nvm-gbps=1.0,2.0", "mode=none,dcpcp"]))
        assert len(records) == 4
        combos = {(r["sweep.nvm-gbps"], r["sweep.mode"]) for r in records}
        assert combos == {("1.0", "none"), ("1.0", "dcpcp"),
                          ("2.0", "none"), ("2.0", "dcpcp")}

    def test_records_carry_metrics(self):
        records = run_sweep(BASE, parse_sweeps(["mode=none"]))
        r = records[0]
        assert r["policy"] == "none"
        assert r["total_time_s"] > r["ideal_time_s"] > 0
        assert "local.avg_blocking_s" in r

    def test_sweep_changes_outcomes(self):
        records = run_sweep(BASE, parse_sweeps(["mode=none,dcpcp"]))
        by_mode = {r["sweep.mode"]: r for r in records}
        assert (by_mode["dcpcp"]["local.avg_blocking_s"]
                < by_mode["none"]["local.avg_blocking_s"])

    def test_csv_main(self, tmp_path, capsys):
        out = tmp_path / "sweep.csv"
        code = sweep_main(["--sweep", "mode=none,dcpcp", "--out", str(out), *BASE])
        assert code == 0
        rows = list(csv.DictReader(out.open()))
        assert len(rows) == 2
        assert rows[0]["sweep.mode"] == "none"
        assert float(rows[0]["total_time_s"]) > 0

    def test_requires_sweep_axis(self):
        with pytest.raises(SystemExit):
            sweep_main(["--out", "-"])


class TestFacadeBackgroundPrecopy:
    def test_advance_lets_precopy_overlap(self, store):
        cfg = CheckpointConfig(precopy=PrecopyPolicy(mode="cpc"))
        app = NVMCheckpoint("p", store=store, checkpoint_config=cfg, phantom=True)
        c = app.nvalloc("x", MB(50))
        app.start_background()
        c.touch()
        app.advance(5.0)  # compute phase: pre-copy runs underneath
        stats = app.nvchkptall()
        app.stop_background()
        assert stats.chunks_copied == 0  # already pre-copied
        assert app.checkpointer.total_precopy_bytes >= MB(50)

    def test_advance_validates(self, store):
        app = NVMCheckpoint("p", store=store)
        with pytest.raises(ValueError):
            app.advance(-1.0)

    def test_advance_returns_clock(self, store):
        app = NVMCheckpoint("p", store=store)
        t = app.advance(3.0)
        assert t == pytest.approx(3.0)
        assert app.now == pytest.approx(3.0)

    def test_real_data_precopy_through_facade(self, store):
        cfg = CheckpointConfig(precopy=PrecopyPolicy(mode="cpc"))
        app = NVMCheckpoint("p", store=store, checkpoint_config=cfg)
        c = app.nvalloc("x", MB(2))
        data = np.arange(MB(2) // 8, dtype=np.float64)
        app.start_background()
        c.write(0, data)
        app.advance(2.0)
        app.nvchkptall()
        app.stop_background()
        app.crash()
        app2, _ = NVMCheckpoint.restart("p", store)
        assert np.array_equal(app2.chunk("x").view(np.float64), data)
