"""Memory device models: capacity, timing, wear, endurance."""

import pytest

from repro.config import DRAM_CONFIG, PCM_CONFIG
from repro.errors import OutOfMemory
from repro.memory import MemoryDevice
from repro.units import GB, MB, PAGE_SIZE


@pytest.fixture
def pcm():
    return MemoryDevice(PCM_CONFIG)


class TestCapacity:
    def test_allocate_and_release(self, pcm):
        pcm.allocate(MB(100), owner="p0")
        assert pcm.allocated == MB(100)
        assert pcm.allocated_by("p0") == MB(100)
        pcm.release(MB(100), owner="p0")
        assert pcm.allocated == 0
        assert pcm.allocated_by("p0") == 0

    def test_out_of_memory(self, pcm):
        with pytest.raises(OutOfMemory):
            pcm.allocate(pcm.capacity + 1)

    def test_exhaust_exactly(self, pcm):
        pcm.allocate(pcm.capacity)
        assert pcm.free == 0
        with pytest.raises(OutOfMemory):
            pcm.allocate(1)

    def test_negative_sizes_rejected(self, pcm):
        with pytest.raises(ValueError):
            pcm.allocate(-1)
        with pytest.raises(ValueError):
            pcm.release(-1)

    def test_over_release_rejected(self, pcm):
        pcm.allocate(10)
        with pytest.raises(ValueError):
            pcm.release(11)

    def test_peak_watermark(self, pcm):
        pcm.allocate(MB(10))
        pcm.allocate(MB(20))
        pcm.release(MB(25))
        assert pcm.peak_allocated == MB(30)


class TestTiming:
    def test_write_time_bandwidth_bound(self, pcm):
        # 2 GiB at 2 GiB/s = 1 s (bandwidth dominates for big writes)
        t = pcm.write_time(GB(2))
        assert t == pytest.approx(1.0, rel=0.05)

    def test_write_time_latency_floor_small(self):
        # on a device fast enough that bandwidth alone would predict
        # < page latency, the per-page latency floor applies
        import dataclasses

        fast = dataclasses.replace(PCM_CONFIG, write_bandwidth=1e12)
        dev = MemoryDevice(fast)
        assert dev.write_time(PAGE_SIZE) == pytest.approx(fast.page_write_latency)

    def test_write_time_never_below_latency_floor(self, pcm):
        assert pcm.write_time(PAGE_SIZE) >= PCM_CONFIG.page_write_latency

    def test_read_faster_than_write_on_pcm(self, pcm):
        assert pcm.read_time(MB(64)) < pcm.write_time(MB(64))

    def test_zero_bytes_zero_time(self, pcm):
        assert pcm.write_time(0) == 0.0
        assert pcm.read_time(0) == 0.0

    def test_dram_symmetric(self):
        dram = MemoryDevice(DRAM_CONFIG)
        assert dram.read_time(MB(64)) == pytest.approx(dram.write_time(MB(64)))


class TestWearAndEnergy:
    def test_write_accounting(self, pcm):
        pcm.record_write(MB(1))
        assert pcm.wear.bytes_written == MB(1)
        assert pcm.wear.page_writes == MB(1) // PAGE_SIZE

    def test_read_accounting(self, pcm):
        pcm.record_read(MB(2))
        assert pcm.wear.bytes_read == MB(2)

    def test_energy_40x_dram(self):
        pcm = MemoryDevice(PCM_CONFIG)
        dram = MemoryDevice(DRAM_CONFIG)
        pcm.record_write(MB(1))
        dram.record_write(MB(1))
        ratio = pcm.wear.write_energy_joules / dram.wear.write_energy_joules
        assert ratio == pytest.approx(40.0)

    def test_endurance_fraction(self, pcm):
        pcm.record_write(int(0.01 * PCM_CONFIG.write_endurance * PCM_CONFIG.capacity))
        assert pcm.endurance_fraction_used() == pytest.approx(0.01)

    def test_endurance_zero_when_unwritten(self, pcm):
        assert pcm.endurance_fraction_used() == 0.0
        assert pcm.estimated_lifetime_seconds(100.0) == float("inf")

    def test_lifetime_extrapolation(self, pcm):
        # consume 1% of endurance in 100 s -> lifetime 10,000 s
        pcm.record_write(int(0.01 * PCM_CONFIG.write_endurance * PCM_CONFIG.capacity))
        assert pcm.estimated_lifetime_seconds(100.0) == pytest.approx(10_000.0, rel=0.01)

    def test_wear_merge(self, pcm):
        other = MemoryDevice(PCM_CONFIG)
        pcm.record_write(100)
        other.record_write(50)
        pcm.wear.merge(other.wear)
        assert pcm.wear.bytes_written == 150
