"""Runner and cluster edge cases: buddy loss, consecutive failures,
PFS-mode interplay, degenerate configurations."""

import pytest

from repro.apps import SyntheticModel
from repro.baselines import precopy_config
from repro.cluster import Cluster, ClusterRunner
from repro.config import CheckpointConfig, ClusterConfig, FailureConfig, PrecopyPolicy
from repro.errors import ClusterError
from repro.units import GB_per_sec


def tiny_app(**kw):
    defaults = dict(checkpoint_mb_per_rank=20, chunk_mb=10,
                    iteration_compute_time=10.0, comm_mb_per_iteration=5)
    defaults.update(kw)
    return SyntheticModel(**defaults)


class TestBuddyLossRecovery:
    def test_hard_failure_resets_surviving_helpers_targets(self):
        """When a node dies, helpers that used it as their buddy lose
        their remote copies; the runner re-points them and re-queues
        everything."""
        fc = FailureConfig(mtbf_local=1e9, mtbf_remote=110.0, seed=13)
        cluster = Cluster(ClusterConfig(nodes=2), nvm_write_bandwidth=GB_per_sec(2.0), seed=13)
        cluster.build(tiny_app(), precopy_config(10, 30), ranks_per_node=2)
        runner = ClusterRunner(cluster, failure_config=fc, fail_until_iteration=3)
        res = runner.run(6)
        assert res.hard_failures >= 1
        assert res.iterations == 6
        # with 2 nodes each is the other's buddy: the survivor's helper
        # must now target the replacement context
        dead = next(n for n in cluster.nodes if n.incarnation > 0)
        survivor = next(n for n in cluster.nodes if n is not dead)
        assert survivor.helper is not None
        assert survivor.helper.buddy_ctx is dead.ctx

    def test_remote_protection_reestablished_after_buddy_loss(self):
        """After the replacement, later rounds repopulate the remote
        copies on the new hardware."""
        fc = FailureConfig(mtbf_local=1e9, mtbf_remote=110.0, seed=13)
        cluster = Cluster(ClusterConfig(nodes=2), nvm_write_bandwidth=GB_per_sec(2.0), seed=13)
        cluster.build(tiny_app(), precopy_config(10, 30), ranks_per_node=2)
        runner = ClusterRunner(cluster, failure_config=fc, fail_until_iteration=3)
        res = runner.run(8)
        # whichever nodes survived to the end, the rounds after the
        # last replacement must have repopulated the remote copies
        committed = [
            v
            for node in cluster.nodes
            if node.helper is not None
            for t in node.helper.targets.values()
            for v in t.committed.values()
        ]
        assert committed and all(v >= 0 for v in committed)


class TestConsecutiveFailures:
    def test_back_to_back_failures_still_complete(self):
        fc = FailureConfig(mtbf_local=60.0, mtbf_remote=240.0, seed=9)
        cluster = Cluster(ClusterConfig(nodes=2), nvm_write_bandwidth=GB_per_sec(2.0), seed=9)
        cluster.build(tiny_app(), precopy_config(10, 30), ranks_per_node=2)
        runner = ClusterRunner(cluster, failure_config=fc, fail_until_iteration=4)
        res = runner.run(6)
        assert res.iterations == 6
        assert res.soft_failures + res.hard_failures >= 2

    def test_recompute_accounting_never_negative(self):
        fc = FailureConfig(mtbf_local=80.0, mtbf_remote=320.0, seed=9)
        cluster = Cluster(ClusterConfig(nodes=2), nvm_write_bandwidth=GB_per_sec(2.0), seed=9)
        cluster.build(tiny_app(), precopy_config(10, 30), ranks_per_node=2)
        runner = ClusterRunner(cluster, failure_config=fc, fail_until_iteration=4)
        res = runner.run(6)
        assert res.iterations_recomputed >= 0
        assert res.recovery_time >= 0


class TestDegenerateConfigs:
    def test_single_iteration(self):
        cluster = Cluster(ClusterConfig(nodes=2), seed=1)
        cluster.build(tiny_app(), precopy_config(10, 30), ranks_per_node=1)
        res = ClusterRunner(cluster).run(1)
        assert res.iterations == 1
        assert res.local_checkpoints == 2

    def test_zero_iterations(self):
        cluster = Cluster(ClusterConfig(nodes=2), seed=1)
        cluster.build(tiny_app(), precopy_config(10, 30), ranks_per_node=1)
        res = ClusterRunner(cluster).run(0)
        assert res.iterations == 0
        assert res.total_time == 0.0

    def test_run_before_build_rejected(self):
        cluster = Cluster(ClusterConfig(nodes=2), seed=1)
        with pytest.raises(ClusterError):
            ClusterRunner(cluster)

    def test_single_rank_cluster(self):
        cluster = Cluster(ClusterConfig(nodes=2), seed=1)
        cluster.build(tiny_app(), precopy_config(10, 30), ranks_per_node=1,
                      n_nodes_used=1, with_remote=False)
        res = ClusterRunner(cluster).run(2)
        assert res.n_ranks == 1
        assert res.iterations == 2

    def test_remote_interval_longer_than_run(self):
        """No remote round ever fires; the run still terminates."""
        cluster = Cluster(ClusterConfig(nodes=2), seed=1)
        cluster.build(tiny_app(), precopy_config(10, 1e6), ranks_per_node=2)
        res = ClusterRunner(cluster).run(2)
        assert res.remote_rounds == 0
        assert res.iterations == 2

    def test_no_communication_app(self):
        app = tiny_app(comm_mb_per_iteration=0)
        cluster = Cluster(ClusterConfig(nodes=2), seed=1)
        cluster.build(app, precopy_config(10, 30), ranks_per_node=2)
        res = ClusterRunner(cluster).run(2)
        assert res.fabric_app_bytes == 0.0

    def test_write_once_only_app(self):
        """Everything is written once: after the first checkpoint the
        coordinated steps are empty."""
        app = tiny_app(write_once_fraction=1.0)
        cluster = Cluster(ClusterConfig(nodes=2), seed=1)
        cluster.build(app, precopy_config(10, 30), ranks_per_node=2, with_remote=False)
        res = ClusterRunner(cluster).run(3)
        # only the first checkpoint carries data
        per_ckpt = res.coordinated_bytes + res.local_precopy_bytes
        assert per_ckpt == cluster.checkpoint_bytes()


class TestSeedIsolation:
    def test_different_seeds_differ_under_failures(self):
        def run(seed):
            fc = FailureConfig(mtbf_local=100.0, mtbf_remote=400.0, seed=seed)
            cluster = Cluster(ClusterConfig(nodes=2), seed=seed)
            cluster.build(tiny_app(), precopy_config(10, 30), ranks_per_node=2)
            return ClusterRunner(cluster, failure_config=fc,
                                 fail_until_iteration=3).run(4)

        a = run(13)
        b = run(14)
        assert (a.total_time, a.soft_failures, a.hard_failures) != (
            b.total_time, b.soft_failures, b.hard_failures
        )
