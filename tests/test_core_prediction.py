"""DCPCP prediction table and the Fig.-6 modification state machine."""

import pytest

from repro.core.prediction import ModificationStateMachine, PredictionTable


class FakeChunk:
    def __init__(self, cid):
        self.chunk_id = cid


@pytest.fixture
def table():
    return PredictionTable(smoothing=0.5)


class TestLearning:
    def test_learning_until_first_interval_completes(self, table):
        assert table.learning
        table.begin_interval()
        table.end_interval()
        assert not table.learning

    def test_everything_eligible_while_learning(self, table):
        c = FakeChunk(1)
        table.begin_interval()
        table.observe(c)
        assert table.eligible(c)

    def test_learned_counts_match_observations(self, table):
        c = FakeChunk(1)
        table.begin_interval()
        for _ in range(3):
            table.observe(c)
        table.end_interval()
        assert table.expected_mods(c) == pytest.approx(3.0)


class TestEligibility:
    def _learn(self, table, chunk, mods):
        table.begin_interval()
        for _ in range(mods):
            table.observe(chunk)
        table.end_interval()

    def test_withheld_until_count_reached(self, table):
        """Fig. 6 / §IV: chunk C3 modified 3 times in the learning run
        is not copied until its counter reaches 0."""
        c = FakeChunk(3)
        self._learn(table, c, 3)
        table.begin_interval()
        table.observe(c)
        assert not table.eligible(c)
        table.observe(c)
        assert not table.eligible(c)
        table.observe(c)
        assert table.eligible(c)

    def test_remaining_mods(self, table):
        c = FakeChunk(1)
        self._learn(table, c, 4)
        table.begin_interval()
        table.observe(c)
        assert table.remaining_mods(c) == pytest.approx(3.0)

    def test_unknown_chunk_is_eligible_after_learning(self, table):
        """A chunk never seen in learning has expectation 0 — copy it
        whenever dirty (prediction can't help)."""
        self._learn(table, FakeChunk(1), 2)
        assert table.eligible(FakeChunk(99))

    def test_smoothing_adapts(self, table):
        c = FakeChunk(1)
        self._learn(table, c, 4)
        # behaviour changes: now only 2 mods per interval
        for _ in range(6):
            self._learn(table, c, 2)
        assert table.expected_mods(c) == pytest.approx(2.0, abs=0.2)

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            PredictionTable(smoothing=0.0)
        with pytest.raises(ValueError):
            PredictionTable(smoothing=1.5)


class TestAccuracy:
    def test_hits_and_misses(self, table):
        c = FakeChunk(1)
        table.record_outcome(c, was_redundant=False)
        table.record_outcome(c, was_redundant=False)
        table.record_outcome(c, was_redundant=True)
        assert table.accuracy() == pytest.approx(2.0 / 3.0)

    def test_accuracy_defaults_to_one(self, table):
        assert table.accuracy() == 1.0

    def test_snapshot(self, table):
        c = FakeChunk(5)
        table.begin_interval()
        table.observe(c)
        table.end_interval()
        assert table.snapshot() == {5: 1.0}


class TestStateMachine:
    def test_transition_counting(self):
        m = ModificationStateMachine()
        for cid in (1, 2, 3, 1, 2, 3):
            m.observe(cid)
        assert m.transitions[(1, 2)] == 2
        assert m.transitions[(2, 3)] == 2
        assert m.transitions[(3, 1)] == 1

    def test_predict_next_most_frequent(self):
        m = ModificationStateMachine()
        for cid in (1, 2, 1, 2, 1, 3):
            m.observe(cid)
        assert m.predict_next(1) == 2

    def test_predict_unknown_state(self):
        m = ModificationStateMachine()
        assert m.predict_next(9) is None

    def test_reset_position_breaks_walk(self):
        m = ModificationStateMachine()
        m.observe(1)
        m.reset_position()
        m.observe(2)
        assert (1, 2) not in m.transitions

    def test_successors_sorted_by_count(self):
        m = ModificationStateMachine()
        for cid in (1, 2, 1, 2, 1, 3):
            m.observe(cid)
        succ = m.successors(1)
        assert succ[0][0] == 2 and succ[0][1] == 2

    def test_to_dot_contains_edges(self):
        m = ModificationStateMachine()
        m.observe(1)
        m.observe(2)
        dot = m.to_dot(names={1: "C1", 2: "C2"})
        assert '"C1" -> "C2"' in dot
        assert dot.startswith("digraph")

    def test_machine_integrated_with_table(self, table):
        a, b = FakeChunk(1), FakeChunk(2)
        table.begin_interval()
        table.observe(a)
        table.observe(b)
        table.end_interval()
        assert table.machine.predict_next(1) == 2
