"""The crash-point fault-injection matrix.

Every named crash point in the registry gets one parametrized case:
run the deterministic checkpoint workload, crash at exactly that
persistence-ordering point (after at least one committed checkpoint),
then assert the ConsistencyChecker finds no broken invariants and a
full restart through the real recovery path round-trips a legal
application state — committed, legally in-flight, or buddy-recovered.
Silent corruption (torn restored data) fails the matrix.

Also here: registry/plan API contracts, checker detection tests, the
synchronous power-loss semantics of Process.abort, and the
FailureInjector degenerate-MTBF regression tests.
"""

import math

import pytest

from repro.cluster.failures import HARD, SOFT, FailureInjector
from repro.config import FailureConfig
from repro.errors import CrashInjected, FaultInjectionError
from repro.faults.checker import ConsistencyChecker
from repro.faults.crashpoints import (
    REGISTRY,
    FaultInjector as InjectorBase,
    all_points,
    fire,
    install,
)
from repro.faults.harness import (
    CONSISTENT_OUTCOMES,
    OUTCOME_REMOTE,
    CrashConsistencyHarness,
    matrix_case,
    matrix_points,
)
from repro.faults.plan import KIND_BITROT, FaultPlan, ScriptedFault
from repro.metrics.collectors import CrashOutcomeCounter
from repro.sim.engine import Engine

pytestmark = pytest.mark.faults


# ---------------------------------------------------------------------------
# Registry contracts.
# ---------------------------------------------------------------------------


def test_registry_has_enough_distinct_points():
    assert len(REGISTRY) >= 15
    assert len(set(REGISTRY)) == len(REGISTRY)


def test_registry_covers_all_commit_critical_layers():
    layers = {cp.layer for cp in all_points()}
    assert {"local", "precopy", "remote", "restart", "chunk", "store"} <= layers


def test_fire_is_noop_without_injector():
    # would raise if the registry were consulted on the fast path
    fire("local.begin")
    fire("definitely-not-registered")


def test_fire_rejects_unregistered_point_when_installed():
    class Recorder(InjectorBase):
        def on_fire(self, name, info):
            pass

    with install(Recorder()):
        fire("local.begin")
        with pytest.raises(FaultInjectionError):
            fire("definitely-not-registered")


def test_scripted_fault_validation():
    with pytest.raises(FaultInjectionError):
        ScriptedFault("no.such.point")
    with pytest.raises(FaultInjectionError):
        ScriptedFault("local.begin", hit=0)
    with pytest.raises(FaultInjectionError):
        ScriptedFault("local.begin", kind="meteor")
    with pytest.raises(FaultInjectionError):
        # bit-rot needs allocator/store context in fire() info
        ScriptedFault("chunk.stage.mid", kind=KIND_BITROT)


def test_random_plan_is_seed_deterministic():
    a, b = FaultPlan.random(1234), FaultPlan.random(1234)
    assert [(f.point, f.hit, f.kind) for f in a.faults] == [
        (f.point, f.hit, f.kind) for f in b.faults
    ]
    c = FaultPlan.random(1235)
    assert [(f.point, f.hit) for f in a.faults] != [(f.point, f.hit) for f in c.faults]


# ---------------------------------------------------------------------------
# The matrix: one case per registered crash point.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("point_name", matrix_points())
def test_crash_point_matrix(point_name):
    harness, plan = matrix_case(point_name)
    result = harness.run(plan)
    # the scripted fault at the target point must actually have fired
    assert all(f.consumed for f in plan.faults), (
        f"{point_name}: plan never reached its crash point "
        f"(hits seen: {plan.hits})"
    )
    assert result.crash_point is not None
    # the durable state passed every consistency invariant...
    assert result.report is not None and result.report.ok, (
        f"{point_name}: {result.report.summary() if result.report else 'no report'}"
    )
    # ...and restart round-tripped a legal state (never torn data)
    assert result.outcome in CONSISTENT_OUTCOMES, (
        f"{point_name}: outcome {result.outcome!r} ({result.detail})"
    )
    assert result.restored, f"{point_name}: nothing restored"


def test_matrix_covers_required_recovery_paths():
    """The bitrot case must exercise the remote fallback, and the
    restart-path points must survive a double crash."""
    harness, plan = matrix_case("restart.fetch_remote")
    result = harness.run(plan)
    assert result.outcome == OUTCOME_REMOTE
    assert result.double_crash
    assert plan.bitrot_injected, "bit-rot fault never landed"
    assert result.restart_report is not None
    assert result.restart_report.chunks_remote >= 1

    harness2, plan2 = matrix_case("restart.begin")
    result2 = harness2.run(plan2)
    assert result2.double_crash
    assert result2.outcome in CONSISTENT_OUTCOMES


def test_matrix_outcomes_feed_counter():
    counter = CrashOutcomeCounter()
    for point_name in ("local.begin", "local.commit.done", "chunk.stage.mid"):
        harness, plan = matrix_case(point_name)
        result = harness.run(plan)
        counter.record(result.crash_point, result.outcome)
    assert counter.total == 3
    assert counter.count("unrecoverable") == 0
    table = counter.table()
    assert "local.begin" in table and "TOTAL" in table


# ---------------------------------------------------------------------------
# Checker detection: deliberate corruption must be caught, never silent.
# ---------------------------------------------------------------------------


def _committed_world():
    harness = CrashConsistencyHarness(n_steps=2)
    plan = FaultPlan.crash_at("local.begin", hit=2)
    world = harness._build()
    plan.on_crash = lambda pt: (
        [p.abort() for p in world.procs],
        world.store.crash(),
    )
    with install(plan):
        proc = world.engine.process(harness._workload(world), name="w")
        world.procs.append(proc)
        world.engine.run()
    assert plan.crashed_at == "local.begin"
    return harness, world


def test_checker_passes_clean_committed_state():
    harness, world = _committed_world()
    report = ConsistencyChecker(world.store).check_process(harness.PID)
    assert report.ok and not report.checksum_failures
    assert report.committed_chunks == harness.n_chunks


def test_checker_flags_bitrot_as_checksum_failure_not_violation():
    harness, world = _committed_world()
    # rot one durable byte of a committed region
    meta = world.store.get_meta(f"alloc/proc:{harness.PID}")
    name, rec = sorted(meta["chunks"].items())[0]
    region_id = f"{harness.PID}/{name}#v{rec['committed']}"
    world.store.corrupt(region_id, 7)
    report = ConsistencyChecker(world.store).check_process(harness.PID)
    # detected corruption is recoverable (buddy fallback), not silent
    assert report.ok
    assert report.checksum_failures == [name]


def test_checker_flags_torn_data_against_oracle():
    harness, world = _committed_world()
    meta = world.store.get_meta(f"alloc/proc:{harness.PID}")
    expected = {name: {"not-a-real-digest"} for name in meta["chunks"]}
    report = ConsistencyChecker(world.store).check_process(
        harness.PID, expected=expected
    )
    assert not report.ok
    assert any(v.invariant == "torn-data" for v in report.violations)


def test_checker_flags_missing_metadata():
    from repro.memory.persistence import InMemoryStore

    report = ConsistencyChecker(InMemoryStore()).check_process("ghost")
    assert not report.ok
    assert report.violations[0].invariant == "metadata-missing"


def test_checker_flags_dangling_region_reference():
    harness, world = _committed_world()
    meta = world.store.get_meta(f"alloc/proc:{harness.PID}")
    name = sorted(meta["chunks"])[0]
    nvmm_key = f"nvmm/proc:{harness.PID}"
    nvmm_meta = world.store.get_meta(nvmm_key)
    del nvmm_meta["regions"][f"{name}#v0"]
    world.store.put_meta(nvmm_key, nvmm_meta)
    report = ConsistencyChecker(world.store).check_process(harness.PID)
    assert not report.ok
    assert any(v.invariant == "region-missing" for v in report.violations)


# ---------------------------------------------------------------------------
# Power-loss semantics: abort() freezes a process synchronously.
# ---------------------------------------------------------------------------


def test_process_abort_is_synchronous():
    engine = Engine()
    steps = []

    def worker():
        steps.append("a")
        yield engine.timeout(1.0)
        steps.append("b")
        yield engine.timeout(1.0)
        steps.append("c")

    proc = engine.process(worker())

    def killer():
        yield engine.timeout(1.5)
        proc.abort()

    engine.process(killer())
    engine.run()
    # 'b' ran at t=1.0; the abort at t=1.5 must prevent 'c' forever
    assert steps == ["a", "b"]
    assert not proc.alive
    assert not proc.triggered  # the process event never fires


def test_crash_injected_unwinds_synchronous_checkpoint():
    harness = CrashConsistencyHarness(n_steps=2)
    world = harness._build()
    plan = FaultPlan.crash_at("local.commit.before_data_flush", hit=1)
    with install(plan):
        proc = world.engine.process(harness._workload(world), name="w")
        world.engine.run()
    assert not proc.ok
    assert isinstance(proc.exception, CrashInjected)
    assert proc.exception.point == "local.commit.before_data_flush"


# ---------------------------------------------------------------------------
# FailureInjector degenerate-MTBF regression (satellite fix).
# ---------------------------------------------------------------------------


def test_failure_injector_soft_only_when_remote_mtbf_infinite():
    inj = FailureInjector(FailureConfig(mtbf_remote=math.inf), n_nodes=4)
    assert inj.p_soft == 1.0
    kinds = {inj.next_failure().kind for _ in range(50)}
    assert kinds == {SOFT}


def test_failure_injector_hard_only_when_local_mtbf_infinite():
    inj = FailureInjector(FailureConfig(mtbf_local=math.inf), n_nodes=4)
    assert inj.p_soft == 0.0
    kinds = {inj.next_failure().kind for _ in range(50)}
    assert kinds == {HARD}


def test_failure_injector_rejects_no_failure_model():
    # both rates zero used to die with ZeroDivisionError (0.0/0.0)
    with pytest.raises(ValueError):
        FailureInjector(
            FailureConfig(mtbf_local=math.inf, mtbf_remote=math.inf), n_nodes=2
        )


def test_failure_injector_rejects_nonpositive_mtbf():
    with pytest.raises(ValueError):
        FailureInjector(FailureConfig(mtbf_local=0.0), n_nodes=2)
    with pytest.raises(ValueError):
        FailureInjector(FailureConfig(mtbf_remote=-1.0), n_nodes=2)
    # denormal-small MTBF overflows the rate to inf: also rejected
    with pytest.raises(ValueError):
        FailureInjector(FailureConfig(mtbf_local=5e-324), n_nodes=2)


def test_failure_injector_extreme_ratio_rounds_to_valid_probability():
    # the soft rate utterly dominates: p_soft rounds to exactly 1.0,
    # which used to be indistinguishable from a broken mix — now it is
    # clamped and the endpoint is decided deterministically
    inj = FailureInjector(
        FailureConfig(mtbf_local=1.0, mtbf_remote=1e308), n_nodes=1
    )
    assert 0.0 <= inj.p_soft <= 1.0
    kinds = {inj.next_failure().kind for _ in range(20)}
    assert kinds == {SOFT}


def test_failure_injector_normal_schedule_unchanged_by_fix():
    a = FailureInjector(FailureConfig(seed=99), n_nodes=8)
    b = FailureInjector(FailureConfig(seed=99), n_nodes=8)
    evs_a = [a.next_failure() for _ in range(20)]
    evs_b = [b.next_failure() for _ in range(20)]
    assert evs_a == evs_b
    assert {e.kind for e in evs_a} == {SOFT, HARD}
