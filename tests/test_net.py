"""Network layer: topology/buddies, fabric contention, RDMA coupling."""

import pytest

from repro.config import InterconnectConfig
from repro.errors import ClusterError
from repro.net import Fabric, Topology, rdma_get, rdma_put
from repro.sim import BandwidthResource, Engine
from repro.units import MB
from tests.conftest import run_proc


class TestTopology:
    def test_striped_racks(self):
        t = Topology(8, 2)
        assert t.rack_of(0) == 0
        assert t.rack_of(1) == 1
        assert t.nodes_in_rack(0) == [0, 2, 4, 6]

    def test_buddy_is_cross_rack(self):
        t = Topology(8, 2)
        for n in range(8):
            b = t.buddy_of(n)
            assert b != n
            assert t.rack_of(b) != t.rack_of(n)

    def test_buddy_total_mapping(self):
        t = Topology(7, 3)
        buddies = t.buddies()
        assert len(buddies) == 7
        assert all(b != n for n, b in buddies.items())

    def test_single_rack_buddy(self):
        t = Topology(4, 1)
        assert t.buddy_of(0) == 1

    def test_single_node_has_no_buddy(self):
        with pytest.raises(ClusterError):
            Topology(1).buddy_of(0)

    def test_more_racks_than_nodes_clamped(self):
        t = Topology(2, 8)
        assert t.n_racks == 2

    def test_neighbors_ring(self):
        t = Topology(6, 2)
        assert t.neighbors(0, degree=2) == [1, 5]
        assert t.neighbors(3, degree=2) == [2, 4]

    def test_neighbors_single_node(self):
        assert Topology(1).neighbors(0) == []

    def test_bounds_checked(self):
        t = Topology(4)
        with pytest.raises(ClusterError):
            t.rack_of(4)
        with pytest.raises(ClusterError):
            t.buddy_of(-1)


class TestFabric:
    def test_transfer_timing(self, engine):
        fab = Fabric(engine, 2, InterconnectConfig())
        bw = fab.config.effective_bandwidth

        def p():
            yield fab.transfer(0, 1, bw)  # exactly 1 second of data
            return engine.now

        t = run_proc(engine, p())
        assert t == pytest.approx(1.0 + fab.config.rdma_latency, rel=1e-6)

    def test_loopback_rejected(self, engine):
        fab = Fabric(engine, 2)
        with pytest.raises(ClusterError):
            fab.transfer(0, 0, 100)

    def test_egress_contention(self, engine):
        """Two transfers out of the same node share its egress link."""
        fab = Fabric(engine, 3)
        bw = fab.config.effective_bandwidth
        ends = []

        def p(dst):
            yield fab.transfer(0, dst, bw)
            ends.append(engine.now)

        engine.process(p(1))
        engine.process(p(2))
        engine.run()
        assert max(ends) == pytest.approx(2.0 + fab.config.rdma_latency, rel=1e-3)

    def test_ingress_contention(self, engine):
        """Two senders into one node share its ingress link."""
        fab = Fabric(engine, 3)
        bw = fab.config.effective_bandwidth
        ends = []

        def p(src):
            yield fab.transfer(src, 0, bw)
            ends.append(engine.now)

        engine.process(p(1))
        engine.process(p(2))
        engine.run()
        assert max(ends) == pytest.approx(2.0 + fab.config.rdma_latency, rel=1e-3)

    def test_disjoint_pairs_full_rate(self, engine):
        fab = Fabric(engine, 4)
        bw = fab.config.effective_bandwidth
        ends = []

        def p(src, dst):
            yield fab.transfer(src, dst, bw)
            ends.append(engine.now)

        engine.process(p(0, 1))
        engine.process(p(2, 3))
        engine.run()
        assert max(ends) == pytest.approx(1.0 + fab.config.rdma_latency, rel=1e-3)

    def test_total_bytes_by_suffix(self, engine):
        fab = Fabric(engine, 2)

        def p():
            yield fab.transfer(0, 1, 100.0, tag="r0:app")
            yield fab.transfer(0, 1, 50.0, tag="r0:rckpt")

        run_proc(engine, p())
        assert fab.total_bytes(":app") == pytest.approx(100.0)
        assert fab.total_bytes() == pytest.approx(150.0)

    def test_windowed_usage_filtered_by_kind(self, engine):
        fab = Fabric(engine, 2)

        def p():
            yield fab.transfer(0, 1, MB(10), tag="r0:rckpt")

        run_proc(engine, p())
        t_end = engine.now + 1
        total = sum(v for _, v in fab.windowed_usage(0.5, t_end))
        ckpt = sum(v for _, v in fab.windowed_usage(0.5, t_end, kinds=["rckpt"]))
        app = sum(v for _, v in fab.windowed_usage(0.5, t_end, kinds=["app"]))
        assert ckpt == pytest.approx(total, rel=0.01)
        assert app == 0.0

    def test_peak_rate_aggregates_links(self, engine):
        fab = Fabric(engine, 4)
        bw = fab.config.effective_bandwidth

        def p(src, dst):
            yield fab.transfer(src, dst, bw / 2)

        engine.process(p(0, 1))
        engine.process(p(2, 3))
        engine.run()
        assert fab.peak_rate() == pytest.approx(2 * bw, rel=1e-3)

    def test_needs_a_node(self, engine):
        with pytest.raises(ClusterError):
            Fabric(engine, 0)


class TestRdma:
    def test_put_charges_destination_nvm_bus(self, engine):
        fab = Fabric(engine, 2)
        slow_bus = BandwidthResource(engine, 1e6)  # 1 MB/s destination NVM

        def p():
            yield rdma_put(fab, 0, 1, 1e6, dst_nvm_bus=slow_bus)
            return engine.now

        # the NVM bus (1 s) dominates the fabric (<1 ms)
        t = run_proc(engine, p())
        assert t == pytest.approx(1.0, rel=0.01)
        assert slow_bus.total_bytes == pytest.approx(1e6)

    def test_put_without_bus_is_fabric_only(self, engine):
        fab = Fabric(engine, 2)

        def p():
            yield rdma_put(fab, 0, 1, MB(1))
            return engine.now

        t = run_proc(engine, p())
        assert t < 0.01

    def test_get_charges_source_bus(self, engine):
        fab = Fabric(engine, 2)
        src_bus = BandwidthResource(engine, 1e6)

        def p():
            yield rdma_get(fab, 1, 0, 1e6, src_nvm_bus=src_bus)
            return engine.now

        assert run_proc(engine, p()) == pytest.approx(1.0, rel=0.01)
