"""Multi-tenant QoS layer: capacity partitions, the weighted-fair
bandwidth bus, admission control/preemption, and the pinned scenario
driver's acceptance behaviour."""

import pytest

from repro.config import PCM_CONFIG, BandwidthModelConfig
from repro.errors import SimulationError, TransferCancelled
from repro.memory.bandwidth import CoreContentionModel
from repro.metrics.trace import BUS
from repro.sim import Engine
from repro.tenancy import (
    AdmissionController,
    NvmPartition,
    TenantSpec,
    WeightedFairBus,
    run_scenario,
)
from repro.units import MB

pytestmark = pytest.mark.tenancy


# ---------------------------------------------------------------------------
# NvmPartition
# ---------------------------------------------------------------------------


class TestNvmPartition:
    def test_reserve_release_accounting(self):
        p = NvmPartition("a", MB(10))
        assert p.reserve(MB(4))
        assert p.used_bytes == MB(4)
        assert p.available_bytes == MB(6)
        p.release(MB(4))
        assert p.used_bytes == 0
        assert p.peak_used_bytes == MB(4)

    def test_over_quota_reserve_fails_and_counts(self):
        p = NvmPartition("a", MB(10))
        assert p.reserve(MB(8))
        assert not p.reserve(MB(4))  # hard wall, never borrowed
        assert p.used_bytes == MB(8)
        assert p.reserve_failures == 1
        assert p.can_reserve(MB(2))

    def test_validation(self):
        with pytest.raises(SimulationError):
            NvmPartition("a", 0)
        with pytest.raises(SimulationError):
            NvmPartition("a", MB(1), share=0.0)
        p = NvmPartition("a", MB(1))
        with pytest.raises(SimulationError):
            p.reserve(-1)
        with pytest.raises(SimulationError):
            p.release(1)  # more than reserved


# ---------------------------------------------------------------------------
# WeightedFairBus
# ---------------------------------------------------------------------------


def make_bus(shares, engine=None):
    engine = engine or Engine()
    contention = CoreContentionModel(PCM_CONFIG, BandwidthModelConfig())
    partitions = {
        name: NvmPartition(name, MB(1024), share=share)
        for name, share in shares.items()
    }
    return engine, contention, WeightedFairBus(engine, contention, partitions)


def run_proc(engine, gen):
    p = engine.process(gen)
    engine.run()
    return p


class TestWeightedFairBus:
    def test_lone_tenant_runs_at_device_speed(self):
        """Work-conserving: a lone low-share tenant is not limited by
        its weight — only by the per-flow cap."""
        engine, contention, bus = make_bus({"a": 0.01, "b": 10.0})
        done = []

        def xfer():
            yield bus.transfer("a", contention.single_core_cap, tag="t")
            done.append(engine.now)

        run_proc(engine, xfer())
        assert done[0] == pytest.approx(1.0)
        assert bus.throttle_time.get("a", 0.0) == 0.0

    def test_weighted_split_under_contention(self):
        """With both tenants demanding more than the device gives, the
        high-share tenant is satiated first and never throttled; the
        low-share tenant absorbs the contention."""
        engine, contention, bus = make_bus({"hi": 4.0, "lo": 1.0})
        cap = contention.single_core_cap
        ends = {}

        def xfer(tenant, i):
            yield bus.transfer(tenant, cap, tag=f"{tenant}:{i}")
            ends[(tenant, i)] = engine.now

        for i in range(2):
            engine.process(xfer("hi", i))
            engine.process(xfer("lo", i))
        engine.run()
        bus.finalize()
        # 4 flows demand 4x the single-core cap = the device peak, but
        # C_eff(4) < peak: somebody must be throttled, and the weights
        # say it is "lo"
        assert max(ends[("hi", 0)], ends[("hi", 1)]) == pytest.approx(1.0)
        assert min(ends[("lo", 0)], ends[("lo", 1)]) > 1.0
        assert bus.throttle_time.get("hi", 0.0) == 0.0
        assert bus.throttle_time["lo"] > 0.0
        assert bus.throttle_events >= 1

    def test_water_fill_borrows_unused_share(self):
        """A demand-capped heavyweight's surplus goes to the others."""
        engine, contention, bus = make_bus({"big": 100.0, "small": 1.0})
        cap = contention.single_core_cap
        shares = bus._water_fill({"big": 1, "small": 3})
        # "big" can only use one flow's worth despite its weight...
        assert shares["big"] == pytest.approx(cap)
        # ...and "small" borrows everything left, far beyond its
        # 1/101 weighted slice
        c4 = contention.effective_capacity(4)
        assert shares["small"] == pytest.approx(c4 - cap)
        assert shares["small"] > c4 * (1.0 / 101.0)

    def test_byte_conservation(self):
        engine, contention, bus = make_bus({"a": 2.0, "b": 1.0})
        sizes = [MB(64), MB(32), MB(128), MB(16)]
        for i, n in enumerate(sizes):
            tenant = "a" if i % 2 == 0 else "b"
            engine.process(iter([bus.transfer(tenant, n, tag=f"f{i}")]))
        engine.run()
        assert bus.total_bytes == pytest.approx(sum(sizes), rel=1e-6)
        assert bus.active_flows == 0
        assert sum(bus.bytes_by_tenant.values()) == pytest.approx(sum(sizes), rel=1e-6)

    def test_zero_byte_transfer_completes_immediately(self):
        engine, _, bus = make_bus({"a": 1.0})
        ev = bus.transfer("a", 0)
        assert ev.triggered
        assert bus.active_flows == 0

    def test_unknown_tenant_and_negative_bytes_raise(self):
        engine, _, bus = make_bus({"a": 1.0})
        with pytest.raises(SimulationError):
            bus.transfer("ghost", MB(1))
        with pytest.raises(SimulationError):
            bus.transfer("a", -1)

    def test_cancel_tag_preempts_with_transfer_cancelled(self):
        engine, contention, bus = make_bus({"a": 1.0})
        outcome = {}

        def xfer():
            try:
                yield bus.transfer("a", MB(512), tag="victim")
            except TransferCancelled:
                outcome["cancelled"] = engine.now

        engine.process(xfer())
        engine.call_at(0.25, lambda: bus.cancel_tag("victim"))
        engine.run()
        assert outcome["cancelled"] == pytest.approx(0.25)
        assert bus.active_flows == 0

    def test_estimate_rate_is_pure(self):
        engine, contention, bus = make_bus({"a": 1.0, "b": 1.0})
        bus.transfer("a", MB(256), tag="x")
        before = bus.active_flows
        r1 = bus.estimate_rate("b", extra_flows=1)
        r2 = bus.estimate_rate("b", extra_flows=1)
        assert r1 == r2 > 0
        assert bus.active_flows == before

    def test_deterministic_completion_times(self):
        def one_run():
            engine, contention, bus = make_bus({"a": 3.0, "b": 1.0})
            ends = []

            def xfer(tenant, n, delay):
                yield engine.timeout(delay)
                yield bus.transfer(tenant, n, tag=f"{tenant}:{n}")
                ends.append((tenant, engine.now))

            for i in range(4):
                engine.process(xfer("a", MB(64 + i), 0.1 * i))
                engine.process(xfer("b", MB(48 + i), 0.15 * i))
            engine.run()
            bus.finalize()
            return ends, dict(bus.throttle_time)

        assert one_run() == one_run()


# ---------------------------------------------------------------------------
# AdmissionController
# ---------------------------------------------------------------------------


def make_controller(max_running=1, max_queue_depth=4, capacity=MB(64)):
    engine = Engine()
    contention = CoreContentionModel(PCM_CONFIG, BandwidthModelConfig())
    specs = {
        "guar": TenantSpec(
            name="guar", share=4.0, capacity_bytes=capacity,
            interval=30.0, rpo=90.0, guaranteed=True,
        ),
        "be": TenantSpec(
            name="be", share=1.0, capacity_bytes=capacity,
            interval=60.0, rpo=300.0,
        ),
    }
    partitions = {
        name: NvmPartition(
            name, spec.capacity_bytes, share=spec.share, guaranteed=spec.guaranteed
        )
        for name, spec in specs.items()
    }
    bus = WeightedFairBus(engine, contention, partitions)
    ctrl = AdmissionController(
        engine, bus, partitions, specs,
        max_running=max_running, max_queue_depth=max_queue_depth,
    )
    return engine, bus, partitions, ctrl


class TestAdmissionController:
    def test_capacity_reject(self):
        engine, bus, parts, ctrl = make_controller(capacity=MB(8))
        job = ctrl.submit("be", MB(16))
        assert job.decision == "reject"
        assert ctrl.rejected == 1
        assert parts["be"].reserve_failures == 1
        assert parts["be"].used_bytes == 0

    def test_queue_when_busy_then_dispatch(self):
        engine, bus, parts, ctrl = make_controller(max_running=1)
        first = ctrl.submit("be", MB(32))
        second = ctrl.submit("be", MB(8))
        assert first.decision == "admit"
        assert second.decision == "queue"
        assert ctrl.queued == 1
        engine.run()
        # the queued job dispatched once the slot freed, and completed
        assert second.finished_at is not None
        assert second.finished_at > first.finished_at

    def test_queue_full_reject_releases_reservation(self):
        engine, bus, parts, ctrl = make_controller(max_running=1, max_queue_depth=0)
        ctrl.submit("be", MB(32))
        used_after_first = parts["be"].used_bytes
        job = ctrl.submit("be", MB(8))
        assert job.decision == "reject"
        # the failed admission gave its capacity reservation back
        assert parts["be"].used_bytes == used_after_first

    def test_guaranteed_preempts_best_effort_for_slot(self):
        engine, bus, parts, ctrl = make_controller(max_running=1)
        victim = ctrl.submit("be", MB(32))
        assert victim.decision == "admit"
        job = ctrl.submit("guar", MB(16))
        assert job.decision == "admit"
        assert ctrl.preemptions == 1
        assert victim.preemptions == 1
        engine.run()
        # both finished: the victim restarted after the preemption
        assert job.finished_at is not None
        assert victim.finished_at is not None
        assert job.finished_at < victim.finished_at

    def test_best_effort_never_preempts(self):
        engine, bus, parts, ctrl = make_controller(max_running=1)
        ctrl.submit("be", MB(32))
        second = ctrl.submit("be", MB(8))
        assert second.decision == "queue"
        assert ctrl.preemptions == 0

    def test_two_version_capacity_flip(self):
        engine, bus, parts, ctrl = make_controller(max_running=2, capacity=MB(64))
        ctrl.submit("be", MB(24))
        engine.run()
        assert parts["be"].used_bytes == MB(24)  # committed copy held
        ctrl.submit("be", MB(16))
        engine.run()
        # the newer commit superseded the old reservation
        assert parts["be"].used_bytes == MB(16)

    def test_slo_scoring_and_report(self):
        engine, bus, parts, ctrl = make_controller(max_running=4)
        ctrl.submit("guar", MB(16))
        ctrl.submit("be", MB(16))
        engine.run()
        ctrl.finalize()
        rep = ctrl.report()
        assert set(rep) == {"be", "guar"}
        assert rep["guar"]["jobs_completed"] == 1
        assert rep["guar"]["interval_attainment"] == 1.0
        assert rep["guar"]["mean_latency_s"] > 0
        assert rep["guar"]["bytes_moved"] == pytest.approx(MB(16), rel=1e-6)

    def test_admission_and_preempt_trace_events(self):
        with BUS.capture() as ring:
            engine, bus, parts, ctrl = make_controller(max_running=1)
            ctrl.submit("be", MB(32))
            ctrl.submit("guar", MB(16))
            engine.run()
            ctrl.finalize()
        admissions = ring.of_kind("tenant.admission")
        assert [e.decision for e in admissions] == ["admit", "admit"]
        preempts = ring.of_kind("tenant.preempt")
        assert len(preempts) == 1
        assert preempts[0].tenant == "be"
        assert preempts[0].beneficiary == "guar"
        assert preempts[0].reason == "slot"
        slo = ring.of_kind("tenant.slo")
        assert {e.tenant for e in slo} == {"be", "guar"}

    def test_unknown_tenant_raises(self):
        engine, bus, parts, ctrl = make_controller()
        with pytest.raises(SimulationError):
            ctrl.submit("ghost", MB(1))


# ---------------------------------------------------------------------------
# The pinned scenario driver
# ---------------------------------------------------------------------------


class TestScenarioDriver:
    def test_deterministic(self):
        a = run_scenario(seed=3, duration=150.0)
        b = run_scenario(seed=3, duration=150.0)
        assert a == b

    def test_seed_changes_outcome(self):
        a = run_scenario(seed=3, duration=150.0)
        b = run_scenario(seed=4, duration=150.0)
        assert a != b

    def test_pinned_scenario_acceptance(self):
        """The bench/CI contract: the guaranteed tenant holds its
        interval and RPO targets while best-effort tenants are
        throttled, with queueing and preemption both exercised."""
        r = run_scenario()
        tenants = r["tenants"]
        guar = [t for t in tenants.values() if t["guaranteed"]]
        best = [t for t in tenants.values() if not t["guaranteed"]]
        assert guar and best
        for t in guar:
            assert t["interval_attainment"] >= 0.95
            assert t["rpo_attainment"] >= 0.95
            assert t["throttle_time_s"] == 0.0
        assert all(t["throttle_time_s"] > 0.0 for t in best)
        assert r["totals"]["queued"] > 0
        assert r["totals"]["preemptions"] > 0
        assert r["totals"]["rejected"] > 0

    def test_tenant_trace_events_emitted(self):
        with BUS.capture() as ring:
            run_scenario(seed=3, duration=150.0)
        kinds = {e.kind for e in ring.events}
        assert "tenant.admission" in kinds
        assert "tenant.throttle" in kinds
        assert "tenant.slo" in kinds
