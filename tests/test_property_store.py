"""Property-based tests of the persistent store's crash-consistency
contract: at any crash point, every region equals its last-flushed
contents, regardless of the write/flush interleaving."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import InMemoryStore

REGION = "r"
SIZE = 64

# operations: write(offset, byte value), flush, crash
ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, SIZE - 8), st.integers(0, 255)),
        st.tuples(st.just("flush"), st.just(0), st.just(0)),
        st.tuples(st.just("crash"), st.just(0), st.just(0)),
    ),
    max_size=40,
)


@given(program=ops)
@settings(max_examples=150, deadline=None)
def test_crash_always_recovers_last_flush(program):
    store = InMemoryStore()
    store.create(REGION, SIZE)
    store.flush()

    shadow = np.zeros(SIZE, dtype=np.uint8)  # current working contents
    durable = shadow.copy()  # model of the last flush

    for op, off, val in program:
        if op == "write":
            payload = np.full(8, val, dtype=np.uint8)
            store.write(REGION, off, payload)
            shadow[off : off + 8] = payload
        elif op == "flush":
            store.flush()
            durable = shadow.copy()
        else:  # crash
            store.crash()
            shadow = durable.copy()
        assert np.array_equal(store.read(REGION), shadow)


@given(
    keys=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 99)), max_size=25
    ),
    crash_at=st.integers(0, 25),
)
@settings(max_examples=100, deadline=None)
def test_metadata_crash_consistency(keys, crash_at):
    store = InMemoryStore()
    durable = {}
    working = {}
    for i, (key, val) in enumerate(keys):
        store.put_meta(key, val)
        working[key] = val
        if i % 3 == 2:
            store.flush()
            durable = dict(working)
    if crash_at % 2 == 0:
        store.crash()
        working = dict(durable)
    for key in ("a", "b", "c"):
        assert store.get_meta(key) == working.get(key)


@given(
    sizes=st.lists(st.integers(0, 256), min_size=1, max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_region_sizes_always_reported_exactly(sizes):
    store = InMemoryStore()
    for i, size in enumerate(sizes):
        store.create(f"r{i}", size)
    for i, size in enumerate(sizes):
        assert store.size(f"r{i}") == size
        assert len(store.read(f"r{i}")) == size
