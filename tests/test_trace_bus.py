"""The structured trace bus: event schema, sinks, and pipeline emission.

Covers the bus mechanics (attach/detach/capture, zero-cost when idle),
each sink's contract, and end-to-end emission from the checkpoint
pipeline: policy decisions and chunk copies from the engine and
pre-copy walk, commits, and the timeline adapter reproducing the
directly-instrumented phases.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.alloc import NVAllocator
from repro.config import PrecopyPolicy
from repro.core import LocalCheckpointer, make_standalone_context
from repro.metrics.trace import (
    BUS,
    TRACE_VERSION,
    ChunkCopiedEvent,
    CommitEvent,
    CounterSink,
    FailoverEvent,
    JsonlSink,
    PolicyDecisionEvent,
    RetryEvent,
    RingBufferSink,
    TimelineSink,
    TraceBus,
)
from repro.units import MB


@pytest.fixture(autouse=True)
def clean_bus():
    """Tests must leave the process-global bus empty."""
    yield
    assert not BUS.active, "a test leaked an attached sink"


def _sample_events():
    return [
        PolicyDecisionEvent(t=1.0, actor="r0", chunk="a", decision="precopy", policy="cpc"),
        ChunkCopiedEvent(
            t=2.0, actor="r0", chunk="a", nbytes=10, start=1.5,
            stream="local", phase="precopy", destination="nvm",
        ),
        CommitEvent(t=3.0, actor="r0", chunks_committed=1, bytes_committed=10, flush_cost=0.1),
        RetryEvent(t=4.0, actor="n0", target="n1", attempt=2, delay=0.5, reason="timeout"),
        FailoverEvent(t=5.0, actor="n0", from_target="n1", to_target="n2", reason="buddy died"),
    ]


# ---------------------------------------------------------------------------
# Bus mechanics.
# ---------------------------------------------------------------------------


def test_bus_inactive_by_default_and_emit_is_noop():
    bus = TraceBus()
    assert not bus.active
    bus.emit(_sample_events()[0])  # no sink: must not raise


def test_attach_detach_and_capture_scope():
    bus = TraceBus()
    with bus.capture() as ring:
        assert bus.active
        for ev in _sample_events():
            bus.emit(ev)
        assert len(ring.events) == 5
    assert not bus.active


def test_event_kinds_and_records_are_stable():
    kinds = [e.kind for e in _sample_events()]
    assert kinds == ["policy.decision", "chunk.copied", "commit", "retry", "failover"]
    rec = _sample_events()[1].to_record()
    assert rec["kind"] == "chunk.copied"
    assert rec["chunk"] == "a" and rec["nbytes"] == 10 and rec["destination"] == "nvm"


# ---------------------------------------------------------------------------
# Sinks.
# ---------------------------------------------------------------------------


def test_ring_buffer_bounds_and_filters():
    sink = RingBufferSink(capacity=3)
    for i in range(10):
        sink.handle(CommitEvent(t=float(i), actor="r0", chunks_committed=1,
                                bytes_committed=1, flush_cost=0.0))
    assert len(sink.events) == 3
    assert [e.t for e in sink.of_kind("commit")] == [7.0, 8.0, 9.0]
    assert sink.of_kind("retry") == []


def test_jsonl_sink_streams_sorted_records():
    buf = io.StringIO()
    sink = JsonlSink(buf, meta={"config": {"mode": "cpc"}})
    for ev in _sample_events():
        sink.handle(ev)
    sink.close()
    header, *lines = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert header["kind"] == "trace.header"
    assert header["trace_version"] == TRACE_VERSION
    assert header["meta"] == {"config": {"mode": "cpc"}}
    assert [r["kind"] for r in lines] == [
        "policy.decision", "chunk.copied", "commit", "retry", "failover",
    ]
    for raw in buf.getvalue().splitlines():
        assert raw == json.dumps(json.loads(raw), sort_keys=True)


def test_jsonl_sink_owns_path_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(str(path))
    sink.handle(_sample_events()[0])
    sink.close()
    header, rec = [json.loads(line) for line in path.read_text().splitlines()]
    assert header["kind"] == "trace.header" and header["meta"] == {}
    assert rec["kind"] == "policy.decision" and rec["policy"] == "cpc"


def test_counter_sink_counts_kinds_and_decisions():
    sink = CounterSink()
    for ev in _sample_events():
        sink.handle(ev)
    sink.handle(PolicyDecisionEvent(t=6.0, actor="r0", chunk="b",
                                    decision="skip", policy="dcpcp"))
    assert sink.by_kind["policy.decision"] == 2
    assert sink.decisions == {"precopy": 1, "skip": 1}


def test_timeline_sink_maps_phases():
    sink = TimelineSink()
    sink.handle(_sample_events()[1])  # local/precopy span 1.5 -> 2.0
    sink.handle(CommitEvent(t=3.0, actor="r0", chunks_committed=1,
                            bytes_committed=1, flush_cost=0.0))  # ignored
    spans = [p for p in sink.timeline.for_actor("r0") if p.kind == "precopy"]
    assert [(p.start, p.end) for p in spans] == [(1.5, 2.0)]
    assert sink.timeline.count("commit") == 0


# ---------------------------------------------------------------------------
# Pipeline emission end-to-end.
# ---------------------------------------------------------------------------


def _traced_run(mode: str):
    ctx = make_standalone_context(name="trace")
    alloc = NVAllocator("p0", ctx.nvmm, ctx.dram, phantom=True,
                        clock=lambda: ctx.engine.now)
    chunks = [alloc.nvalloc(f"c{i}", MB(5)) for i in range(3)]
    ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(mode=mode))
    ck.start_background()

    def app():
        for _ in range(2):
            for c in chunks:
                c.touch()
            yield ctx.engine.timeout(10.0)
            yield from ck.checkpoint(blocking=False)
        ck.stop_background()

    with BUS.capture() as ring:
        ctx.engine.process(app(), name="app")
        ctx.engine.run()
    return ring


def test_engine_emits_copies_decisions_and_commits():
    ring = _traced_run("none")
    copies = ring.of_kind("chunk.copied")
    assert len(copies) == 6  # 3 chunks x 2 checkpoints, no pre-copy
    assert {e.phase for e in copies} == {"coordinated"}
    assert {e.destination for e in copies} == {"nvm"}
    commits = ring.of_kind("commit")
    assert len(commits) == 2
    assert all(c.chunks_committed == 3 for c in commits)
    decisions = ring.of_kind("policy.decision")
    assert {d.policy for d in decisions} == {"none"}
    assert {d.decision for d in decisions} == {"copy_at_checkpoint"}


def test_precopy_emits_policy_decisions_and_spans():
    ring = _traced_run("cpc")
    pre = [e for e in ring.of_kind("chunk.copied") if e.phase == "precopy"]
    assert pre, "CPC run produced no pre-copy spans"
    assert all(e.start <= e.t for e in pre)
    assert any(
        d.decision == "precopy" and d.policy == "cpc"
        for d in ring.of_kind("policy.decision")
    )


def test_tracing_does_not_change_the_schedule():
    plain = _traced_run("dcpcp")  # warm-up for symmetry (captured anyway)
    ctx = make_standalone_context(name="trace-off")
    alloc = NVAllocator("p0", ctx.nvmm, ctx.dram, phantom=True,
                        clock=lambda: ctx.engine.now)
    chunks = [alloc.nvalloc(f"c{i}", MB(5)) for i in range(3)]
    ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(mode="dcpcp"))
    ck.start_background()

    def app():
        for _ in range(2):
            for c in chunks:
                c.touch()
            yield ctx.engine.timeout(10.0)
            yield from ck.checkpoint(blocking=False)
        ck.stop_background()

    ctx.engine.process(app(), name="app")
    ctx.engine.run()
    traced_commits = plain.of_kind("commit")
    assert [round(c.t, 9) for c in traced_commits] == [
        round(s.end, 9) for s in ck.history
    ]
