"""The Table-III synchronous facade: NVMCheckpoint."""

import numpy as np
import pytest

from repro.config import CheckpointConfig, PrecopyPolicy
from repro.core import NVMCheckpoint
from repro.errors import DuplicateChunkId, UnknownChunkId
from repro.memory import FileStore, InMemoryStore
from repro.units import MB


@pytest.fixture
def app(store):
    return NVMCheckpoint("proc0", store=store)


class TestAllocationVerbs:
    def test_genid_matches_module(self, app):
        from repro.alloc import genid

        assert NVMCheckpoint.genid("x") == genid("x")

    def test_nvalloc_and_chunk(self, app):
        c = app.nvalloc("x", MB(1))
        assert app.chunk("x") is c
        assert app.checkpoint_bytes == MB(1)

    def test_nv2dalloc(self, app):
        c = app.nv2dalloc("grid", 64, 64)
        assert c.nbytes == 64 * 64 * 8

    def test_nvattach(self, app):
        src = np.arange(100, dtype=np.float64)
        c = app.nvattach("att", src)
        assert np.array_equal(c.view(np.float64), src)

    def test_nvrealloc_and_delete(self, app):
        app.nvalloc("x", 1024)
        assert app.nvrealloc("x", 2048).nbytes == 2048
        app.nvdelete("x")
        with pytest.raises(UnknownChunkId):
            app.chunk("x")

    def test_duplicate_alloc_rejected(self, app):
        app.nvalloc("x", 1024)
        with pytest.raises(DuplicateChunkId):
            app.nvalloc("x", 1024)


class TestCheckpointVerbs:
    def test_nvchkptall_advances_clock(self, app):
        app.nvalloc("x", MB(4))
        t0 = app.now
        stats = app.nvchkptall()
        assert app.now > t0
        assert stats.chunks_copied == 1

    def test_nvchkptid_single(self, app):
        app.nvalloc("x", MB(1))
        app.nvalloc("y", MB(1))
        stats = app.nvchkptid("x")
        assert stats.chunks_copied == 1
        assert app.chunk("y").committed_version == -1

    def test_repeated_checkpoints_skip_clean(self, app):
        app.nvalloc("x", MB(1))
        app.nvchkptall()
        stats = app.nvchkptall()
        assert stats.chunks_copied == 0

    def test_stats_summary_keys(self, app):
        app.nvalloc("x", MB(1))
        app.nvchkptall()
        s = app.stats_summary()
        assert s["checkpoints"] == 1
        assert s["coordinated_bytes"] == MB(1)
        assert s["nvm_bytes_written"] >= MB(1)
        assert 0 <= s["nvm_endurance_used"] < 1


class TestCrashRestart:
    def test_full_cycle(self, store):
        app = NVMCheckpoint("p", store=store)
        data = np.linspace(0, 1, 1000)
        app.nvalloc("x", data.nbytes).write(0, data)
        app.nvchkptall()
        app.chunk("x").write(0, np.zeros(1000))  # post-ckpt garbage
        app.crash()
        app2, report = NVMCheckpoint.restart("p", store)
        assert report.chunks_local == 1
        assert np.array_equal(app2.chunk("x").view(np.float64), data)

    def test_restart_without_checkpoint_fails(self, store):
        from repro.errors import ReproError

        app = NVMCheckpoint("p", store=store)
        app.nvalloc("x", 1024)
        app.crash()
        with pytest.raises(ReproError):
            NVMCheckpoint.restart("p", store)

    def test_restarted_app_can_checkpoint_again(self, store):
        app = NVMCheckpoint("p", store=store)
        app.nvalloc("x", 1024).write(0, np.ones(128))
        app.nvchkptall()
        app.crash()
        app2, _ = NVMCheckpoint.restart("p", store)
        app2.chunk("x").write(0, np.full(128, 2.0))
        stats = app2.nvchkptall()
        assert stats.chunks_copied == 1
        assert app2.chunk("x").committed_version == 1

    def test_two_processes_share_a_store(self, store):
        a = NVMCheckpoint("pa", store=store, node_config=None)
        b = NVMCheckpoint("pb", store=store)
        a.nvalloc("x", 1024).write(0, np.ones(128))
        b.nvalloc("x", 1024).write(0, np.full(128, 2.0))
        a.nvchkptall()
        b.nvchkptall()
        a.crash()
        a2, _ = NVMCheckpoint.restart("pa", store)
        assert (a2.chunk("x").view(np.float64) == 1.0).all()

    def test_filestore_real_process_restart(self, tmp_path):
        path = str(tmp_path / "nvm")
        app = NVMCheckpoint("p", store=FileStore(path))
        app.nvalloc("x", 1024).write(0, np.full(128, 7.0))
        app.nvchkptall()
        del app  # "process exits"
        app2, report = NVMCheckpoint.restart("p", FileStore(path))
        assert (app2.chunk("x").view(np.float64) == 7.0).all()


class TestConfiguration:
    def test_custom_policy(self, store):
        cfg = CheckpointConfig(precopy=PrecopyPolicy(mode="none"))
        app = NVMCheckpoint("p", store=store, checkpoint_config=cfg)
        assert app.checkpointer.policy.mode == "none"

    def test_phantom_mode(self, store):
        app = NVMCheckpoint("p", store=store, phantom=True)
        c = app.nvalloc("x", MB(100))
        assert c.phantom
        c.touch()
        stats = app.nvchkptall()
        assert stats.bytes_copied == MB(100)

    def test_single_version_mode(self, store):
        cfg = CheckpointConfig(two_versions=False)
        app = NVMCheckpoint("p", store=store, checkpoint_config=cfg)
        c = app.nvalloc("x", 1024)
        assert c.n_versions == 1
        app.nvchkptall()
        app.nvchkptall()
        assert c.committed_version == 0  # always slot 0
