"""DCPC threshold estimation: T_c = D/BW, T_p = I - T_c."""

import pytest

from repro.core.threshold import ThresholdEstimator
from repro.units import MB, MB_per_sec


@pytest.fixture
def est():
    return ThresholdEstimator(bandwidth_per_core=MB_per_sec(100), smoothing=0.5, margin=1.0)


class TestLearning:
    def test_unlearned_threshold_is_zero(self, est):
        assert not est.learned
        assert est.threshold() == 0.0

    def test_one_observation_learns(self, est):
        est.observe_interval(40.0, MB(400))
        assert est.learned
        assert est.interval_estimate == pytest.approx(40.0)
        assert est.data_size_estimate == pytest.approx(MB(400))

    def test_nonpositive_interval_ignored(self, est):
        est.observe_interval(0.0, MB(100))
        assert not est.learned


class TestEquations:
    def test_paper_equation(self, est):
        """T_c = D/NVMBW_core; T_p = I - T_c (margin 1.0)."""
        est.observe_interval(40.0, MB(400))
        assert est.copy_time() == pytest.approx(4.0)
        assert est.threshold() == pytest.approx(36.0)

    def test_margin_scales_copy_time(self):
        est = ThresholdEstimator(MB_per_sec(100), margin=1.5)
        est.observe_interval(40.0, MB(400))
        assert est.copy_time() == pytest.approx(6.0)
        assert est.threshold() == pytest.approx(34.0)

    def test_threshold_never_negative(self, est):
        # copy takes longer than the whole interval
        est.observe_interval(2.0, MB(400))
        assert est.threshold() == 0.0

    def test_update_bandwidth(self, est):
        est.observe_interval(40.0, MB(400))
        est.update_bandwidth(MB_per_sec(200))
        assert est.copy_time() == pytest.approx(2.0)

    def test_update_bandwidth_rejects_nonpositive(self, est):
        """A nonpositive probe is a broken measurement: it must raise
        like the constructor, not silently freeze the stale value."""
        with pytest.raises(ValueError):
            est.update_bandwidth(0.0)
        with pytest.raises(ValueError):
            est.update_bandwidth(-1.0)
        assert est.bandwidth_per_core == MB_per_sec(100)

    def test_update_bandwidth_emits_policy_decision(self):
        from repro.metrics.trace import BUS, CounterSink

        est = ThresholdEstimator(
            MB_per_sec(100), clock=lambda: 7.5, actor="r3"
        )
        sink = CounterSink()
        BUS.attach(sink)
        try:
            est.update_bandwidth(MB_per_sec(200))
        finally:
            BUS.detach(sink)
        assert sink.decisions.get("recompute_threshold") == 1


class TestAdaptation:
    def test_exponential_smoothing(self, est):
        est.observe_interval(40.0, MB(400))
        est.observe_interval(20.0, MB(200))
        # s=0.5: interval = 0.5*20 + 0.5*40 = 30
        assert est.interval_estimate == pytest.approx(30.0)
        assert est.data_size_estimate == pytest.approx(MB(300))

    def test_converges_to_stable_workload(self, est):
        est.observe_interval(100.0, MB(100))
        for _ in range(12):
            est.observe_interval(40.0, MB(400))
        assert est.interval_estimate == pytest.approx(40.0, rel=0.01)

    def test_observation_count(self, est):
        for _ in range(3):
            est.observe_interval(40.0, MB(400))
        assert est.observations == 3


class TestValidation:
    def test_bandwidth_must_be_positive(self):
        with pytest.raises(ValueError):
            ThresholdEstimator(0.0)

    def test_smoothing_range(self):
        with pytest.raises(ValueError):
            ThresholdEstimator(1.0, smoothing=0.0)

    def test_margin_at_least_one(self):
        with pytest.raises(ValueError):
            ThresholdEstimator(1.0, margin=0.5)
