"""Persistent stores: region lifecycle, flush boundary, crash rollback,
file-backed restart."""

import numpy as np
import pytest

from repro.errors import InvalidAddress, PersistenceError
from repro.memory import FileStore, InMemoryStore


@pytest.fixture(params=["memory", "file"])
def anystore(request, tmp_path):
    if request.param == "memory":
        return InMemoryStore()
    return FileStore(str(tmp_path / "store"))


class TestRegionLifecycle:
    def test_create_zero_filled(self, anystore):
        anystore.create("r", 64)
        assert anystore.size("r") == 64
        assert not anystore.read("r").any()

    def test_duplicate_create_rejected(self, anystore):
        anystore.create("r", 8)
        with pytest.raises(PersistenceError):
            anystore.create("r", 8)

    def test_delete(self, anystore):
        anystore.create("r", 8)
        anystore.delete("r")
        assert not anystore.exists("r")
        with pytest.raises(PersistenceError):
            anystore.read("r")

    def test_delete_unknown_rejected(self, anystore):
        with pytest.raises(PersistenceError):
            anystore.delete("ghost")

    def test_resize_grow_preserves_prefix(self, anystore):
        anystore.create("r", 4)
        anystore.write("r", 0, np.array([1, 2, 3, 4], dtype=np.uint8))
        anystore.resize("r", 8)
        assert list(anystore.read("r")[:4]) == [1, 2, 3, 4]
        assert list(anystore.read("r")[4:]) == [0, 0, 0, 0]

    def test_resize_shrink(self, anystore):
        anystore.create("r", 8)
        anystore.resize("r", 2)
        assert anystore.size("r") == 2

    def test_list_regions_sorted(self, anystore):
        for name in ("c", "a", "b"):
            anystore.create(name, 1)
        assert anystore.list_regions() == ["a", "b", "c"]

    def test_negative_size_rejected(self, anystore):
        with pytest.raises(PersistenceError):
            anystore.create("r", -1)


class TestDataAccess:
    def test_write_read_roundtrip(self, anystore):
        anystore.create("r", 1024)
        data = np.arange(128, dtype=np.float64)
        anystore.write("r", 0, data)
        got = anystore.read("r", 0, 1024).view(np.float64)
        assert np.array_equal(got, data)

    def test_offset_write(self, anystore):
        anystore.create("r", 16)
        anystore.write("r", 8, np.full(8, 7, dtype=np.uint8))
        got = anystore.read("r")
        assert not got[:8].any()
        assert (got[8:] == 7).all()

    def test_out_of_bounds_write(self, anystore):
        anystore.create("r", 8)
        with pytest.raises(InvalidAddress):
            anystore.write("r", 4, np.zeros(8, dtype=np.uint8))

    def test_out_of_bounds_read(self, anystore):
        anystore.create("r", 8)
        with pytest.raises(InvalidAddress):
            anystore.read("r", 4, 8)

    def test_read_returns_copy(self, anystore):
        anystore.create("r", 4)
        got = anystore.read("r")
        got[:] = 99
        assert not anystore.read("r").any()


class TestFlushBoundary:
    def test_unflushed_write_dies_on_crash(self, anystore):
        anystore.create("r", 4)
        anystore.flush()
        anystore.write("r", 0, np.full(4, 5, dtype=np.uint8))
        anystore.crash()
        assert not anystore.read("r").any()

    def test_flushed_write_survives_crash(self, anystore):
        anystore.create("r", 4)
        anystore.write("r", 0, np.full(4, 5, dtype=np.uint8))
        anystore.flush()
        anystore.crash()
        assert (anystore.read("r") == 5).all()

    def test_unflushed_region_creation_dies(self, anystore):
        anystore.create("never_flushed", 4)
        anystore.crash()
        assert not anystore.exists("never_flushed")

    def test_flush_returns_byte_count(self, anystore):
        anystore.create("r", 100)
        assert anystore.flush() == 100
        assert anystore.flush() == 0  # nothing dirty now

    def test_metadata_flush_boundary(self, anystore):
        anystore.put_meta("k", {"a": 1})
        anystore.flush()
        anystore.put_meta("k", {"a": 2})
        anystore.crash()
        assert anystore.get_meta("k") == {"a": 1}

    def test_meta_delete_crash_rollback(self, anystore):
        anystore.put_meta("k", 1)
        anystore.flush()
        anystore.delete_meta("k")
        anystore.crash()
        assert anystore.get_meta("k") == 1

    def test_meta_delete_flushed(self, anystore):
        anystore.put_meta("k", 1)
        anystore.flush()
        anystore.delete_meta("k")
        anystore.flush()
        anystore.crash()
        assert anystore.get_meta("k") is None

    def test_meta_value_is_deep_copied(self, anystore):
        payload = {"list": [1, 2]}
        anystore.put_meta("k", payload)
        payload["list"].append(3)
        assert anystore.get_meta("k") == {"list": [1, 2]}


class TestFileStoreRestart:
    def test_survives_process_restart(self, tmp_path):
        path = str(tmp_path / "s")
        s1 = FileStore(path)
        s1.create("r", 16)
        s1.write("r", 0, np.arange(16, dtype=np.uint8))
        s1.put_meta("who", "rank0")
        s1.flush()
        del s1
        s2 = FileStore(path)
        assert s2.get_meta("who") == "rank0"
        assert list(s2.read("r")) == list(range(16))

    def test_unflushed_lost_across_restart(self, tmp_path):
        path = str(tmp_path / "s")
        s1 = FileStore(path)
        s1.create("r", 4)
        s1.flush()
        s1.write("r", 0, np.full(4, 9, dtype=np.uint8))
        del s1  # no flush
        s2 = FileStore(path)
        assert not s2.read("r").any()

    def test_deleted_region_gone_after_restart(self, tmp_path):
        path = str(tmp_path / "s")
        s1 = FileStore(path)
        s1.create("r", 4)
        s1.flush()
        s1.delete("r")
        s1.flush()
        del s1
        assert not FileStore(path).exists("r")

    def test_corrupt_metadata_detected(self, tmp_path):
        path = tmp_path / "s"
        s1 = FileStore(str(path))
        s1.create("r", 4)
        s1.flush()
        (path / "meta.json").write_text("{not json")
        with pytest.raises(PersistenceError):
            FileStore(str(path))

    def test_missing_region_file_detected(self, tmp_path):
        path = tmp_path / "s"
        s1 = FileStore(str(path))
        s1.create("r", 4)
        s1.flush()
        (path / "region_r.bin").unlink()
        with pytest.raises(PersistenceError):
            FileStore(str(path))

    def test_truncated_region_file_detected(self, tmp_path):
        path = tmp_path / "s"
        s1 = FileStore(str(path))
        s1.create("r", 4)
        s1.flush()
        (path / "region_r.bin").write_bytes(b"\0")
        with pytest.raises(PersistenceError):
            FileStore(str(path))
