"""The unified ``checkpoint()`` verb, deprecation shims, and uniform
``ChunkKey`` resolution across the Table-III facade."""

import numpy as np
import pytest

from repro import NVMCheckpoint
from repro.alloc import NVAllocator
from repro.config import PrecopyPolicy
from repro.core import LocalCheckpointer, make_standalone_context
from repro.core.local import CheckpointStats
from repro.core.transparent import TransparentCheckpointer
from repro.errors import AllocationError, UnknownChunkId
from repro.units import MB


def make_local_rig(mode="dcpcp"):
    ctx = make_standalone_context(name="api")
    alloc = NVAllocator("p0", ctx.nvmm, ctx.dram, phantom=True,
                        clock=lambda: ctx.engine.now)
    ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(mode=mode))
    return ctx, alloc, ck


class TestUnifiedCheckpointVerb:
    def test_blocking_default_returns_stats(self):
        ctx, alloc, ck = make_local_rig()
        alloc.nvalloc("a", MB(4))
        stats = ck.checkpoint()
        assert isinstance(stats, CheckpointStats)
        assert stats.chunks_copied == 1

    def test_nonblocking_returns_des_generator(self):
        ctx, alloc, ck = make_local_rig()
        alloc.nvalloc("a", MB(4))
        gen = ck.checkpoint(blocking=False)
        assert hasattr(gen, "send")  # a generator, not stats
        proc = ctx.engine.process(gen)
        ctx.engine.run()
        assert proc.value.chunks_copied == 1

    def test_blocking_only_subset(self):
        ctx, alloc, ck = make_local_rig()
        a = alloc.nvalloc("a", MB(4))
        alloc.nvalloc("b", MB(4))
        stats = ck.checkpoint(only=[a])
        assert stats.chunks_copied == 1
        assert stats.bytes_copied == MB(4)

    def test_legacy_sync_alias_is_gone(self):
        """The 1.0 DeprecationWarning shim was removed in 1.1.0: the
        old spelling fails loudly instead of warning."""
        ctx, alloc, ck = make_local_rig()
        alloc.nvalloc("a", MB(4))
        assert not hasattr(ck, "checkpoint_" + "sync")
        ctx2 = make_standalone_context(name="xp")
        tc = TransparentCheckpointer(ctx2, "p0", MB(8))
        assert not hasattr(tc, "checkpoint_" + "sync")
        # the unified verb stays warning-free
        tc.mark_activity()
        assert tc.checkpoint().bytes_copied == MB(8)

    def test_top_level_checkpoint_helper(self):
        import repro

        ctx, alloc, ck = make_local_rig()
        alloc.nvalloc("a", MB(4))
        stats = repro.checkpoint(ck)
        assert isinstance(stats, CheckpointStats)
        assert stats.chunks_copied == 1
        gen = repro.checkpoint(ck, blocking=False)
        assert hasattr(gen, "send")
        gen.close()
        with pytest.raises(TypeError):
            repro.checkpoint(object())

    def test_facade_checkpoint_all_and_single(self):
        app = NVMCheckpoint("p0")
        app.nvalloc("a", MB(2))
        app.nvalloc("b", MB(2))
        all_stats = app.checkpoint()
        assert all_stats.chunks_copied == 2
        app.chunk("a").touch()
        app.chunk("b").touch()
        one = app.checkpoint("a")
        assert one.chunks_copied == 1
        assert one.bytes_copied == MB(2)

    def test_nvchkpt_aliases_route_through_unified_verb(self):
        app = NVMCheckpoint("p0")
        app.nvalloc("a", MB(2))
        assert app.nvchkptall().chunks_copied == 1
        app.chunk("a").touch()
        assert app.nvchkptid("a").chunks_copied == 1


class TestChunkKeyResolution:
    def setup_method(self):
        self.app = NVMCheckpoint("p0")
        self.chunk = self.app.nvalloc("temp", MB(1))

    def test_int_and_str_keys_are_interchangeable(self):
        cid = NVMCheckpoint.genid("temp")
        assert self.app.chunk("temp") is self.app.chunk(cid)
        assert self.app.nvrealloc(cid, MB(2)).nbytes == MB(2)
        assert self.app.nvrealloc("temp", MB(1)).nbytes == MB(1)

    @pytest.mark.parametrize("method,args", [
        ("chunk", ()),
        ("nvrealloc", (MB(2),)),
        ("nvdelete", ()),
        ("nvchkptid", ()),
        ("checkpoint", ()),
    ])
    def test_unknown_key_raises_uniform_keyerror(self, method, args):
        with pytest.raises(KeyError) as exc:
            getattr(self.app, method)("missing", *args)
        assert "no chunk with key 'missing'" in str(exc.value)
        assert "'p0'" in str(exc.value)

    def test_unknown_int_key_same_message_shape(self):
        with pytest.raises(KeyError, match="no chunk with key 1234"):
            self.app.chunk(1234)

    def test_unknown_key_is_both_keyerror_and_allocationerror(self):
        # callers may catch either hierarchy; both must work
        with pytest.raises(UnknownChunkId):
            self.app.nvdelete("missing")
        with pytest.raises(AllocationError):
            self.app.nvdelete("missing")
        try:
            self.app.nvdelete("missing")
        except KeyError as e:
            assert "missing" in str(e)

    def test_bad_key_type_raises_typeerror(self):
        for bad in (1.5, None, b"temp", True, ["temp"]):
            with pytest.raises(TypeError):
                self.app.chunk(bad)

    def test_nvattach_new_str_key_allocates(self):
        arr = np.arange(64, dtype=np.float64)
        chunk = self.app.nvattach("field", arr)
        assert chunk.nbytes == arr.nbytes
        assert self.app.chunk("field") is chunk

    def test_nvattach_existing_key_reattaches_and_resizes(self):
        bigger = np.zeros(2 * MB(1), dtype=np.uint8)
        chunk = self.app.nvattach("temp", bigger)
        assert chunk.nbytes == bigger.nbytes
        assert self.app.chunk("temp").nbytes == bigger.nbytes
        # re-attach by integer id works too
        chunk2 = self.app.nvattach(NVMCheckpoint.genid("temp"), bigger)
        assert chunk2.nbytes == bigger.nbytes

    def test_nvattach_unknown_int_key_raises_keyerror(self):
        arr = np.zeros(16, dtype=np.uint8)
        with pytest.raises(KeyError, match="no chunk with key"):
            self.app.nvattach(987654, arr)


class TestRoundTrip:
    def test_unified_verb_survives_crash_restart(self):
        from repro.memory import InMemoryStore

        store = InMemoryStore()
        app = NVMCheckpoint("p0", store=store, phantom=False)
        t = app.nvalloc("t", 8 * 64)
        t.write(0, np.arange(64, dtype=np.float64))
        app.checkpoint()
        app.crash()
        app2, report = NVMCheckpoint.restart("p0", store)
        assert report.chunks_local == 1
        assert app2.chunk("t").view(np.float64)[63] == 63.0
