"""Per-core bandwidth contention (Figure 4 calibration)."""

import pytest

from repro.config import BandwidthModelConfig, DRAM_CONFIG, PCM_CONFIG
from repro.memory import CoreContentionModel, make_device_bus
from repro.sim import Engine
from repro.units import MB
from tests.conftest import run_proc


@pytest.fixture
def model():
    return CoreContentionModel(PCM_CONFIG, BandwidthModelConfig())


class TestContentionCurve:
    def test_single_core_cap(self, model):
        assert model.per_core_rate(1) == pytest.approx(model.single_core_cap)

    def test_monotone_decreasing(self, model):
        rates = [model.per_core_rate(n) for n in range(1, 13)]
        for a, b in zip(rates, rates[1:]):
            assert b <= a + 1e-9

    def test_fig4_drop_at_12_cores(self, model):
        """Fig. 4: per-core bandwidth drops ~67% from 1 to 12 procs."""
        drop = 1.0 - model.per_core_rate(12) / model.per_core_rate(1)
        assert 0.55 <= drop <= 0.80

    def test_aggregate_bounded_by_capacity(self, model):
        for n in range(1, 33):
            assert model.aggregate_rate(n) <= model.peak + 1e-6

    def test_aggregate_zero_without_flows(self, model):
        assert model.aggregate_rate(0) == 0.0

    def test_per_core_validates(self, model):
        with pytest.raises(ValueError):
            model.per_core_rate(0)

    def test_effective_capacity_shrinks(self, model):
        assert model.effective_capacity(12) < model.effective_capacity(1)

    def test_nvm_percore_a_few_hundred_mb(self, model):
        """§IV: 'effective per core bandwidth can be as low as
        400 MB/Sec in a 12 core/node configuration' — ours lands in the
        low hundreds of MB/s at full contention."""
        rate = model.per_core_rate(12)
        assert MB(100) <= rate <= MB(500)


class TestCopyTime:
    def test_copy_time_includes_fixed_overhead(self, model):
        t_small = model.copy_time(1)
        assert t_small >= model.model.small_block_overhead

    def test_copy_time_zero_bytes(self, model):
        assert model.copy_time(0) == 0.0

    def test_copy_time_grows_with_contention(self, model):
        assert model.copy_time(MB(33), 12) > model.copy_time(MB(33), 1)

    def test_percore_curve_length_and_units(self, model):
        curve = model.percore_curve(12, MB(33))
        assert len(curve) == 12
        # achieved bandwidth never exceeds the single-core cap
        assert all(c <= model.single_core_cap * 1.01 for c in curve)


class TestDeviceBus:
    def test_bus_honors_contention_model(self):
        engine = Engine()
        bus = make_device_bus(engine, PCM_CONFIG, BandwidthModelConfig())
        model = CoreContentionModel(PCM_CONFIG, BandwidthModelConfig())

        def p():
            yield bus.transfer(MB(100))
            return engine.now

        t = run_proc(engine, p())
        expected = MB(100) / model.per_core_rate(1)
        assert t == pytest.approx(expected, rel=0.01)

    def test_bus_contention_with_12_writers(self):
        engine = Engine()
        bus = make_device_bus(engine, PCM_CONFIG, BandwidthModelConfig())
        model = CoreContentionModel(PCM_CONFIG, BandwidthModelConfig())
        ends = []

        def p():
            yield bus.transfer(MB(10))
            ends.append(engine.now)

        for _ in range(12):
            engine.process(p())
        engine.run()
        expected = MB(10) / model.per_core_rate(12)
        assert max(ends) == pytest.approx(expected, rel=0.02)

    def test_dram_bus_faster_than_pcm(self):
        e1, e2 = Engine(), Engine()
        dram_bus = make_device_bus(e1, DRAM_CONFIG, BandwidthModelConfig())
        pcm_bus = make_device_bus(e2, PCM_CONFIG, BandwidthModelConfig())

        def p(bus, eng):
            yield bus.transfer(MB(100))
            return eng.now

        assert run_proc(e1, p(dram_bus, e1)) < run_proc(e2, p(pcm_bus, e2))


class TestZeroFlowValidation:
    """n_flows <= 0 is a caller bug (tenant shares can drive a
    partition's flow count to zero); a silent full-peak answer there
    hid double-counting, so the model now refuses loudly."""

    def test_effective_capacity_rejects_zero_flows(self):
        model = CoreContentionModel(PCM_CONFIG, BandwidthModelConfig())
        with pytest.raises(ValueError, match="n_flows"):
            model.effective_capacity(0)
        with pytest.raises(ValueError, match="n_flows"):
            model.effective_capacity(-3)

    def test_per_core_rate_rejects_zero_flows(self):
        model = CoreContentionModel(PCM_CONFIG, BandwidthModelConfig())
        with pytest.raises(ValueError, match="n_flows"):
            model.per_core_rate(0)

    def test_copy_time_rejects_zero_flows(self):
        model = CoreContentionModel(PCM_CONFIG, BandwidthModelConfig())
        with pytest.raises(ValueError, match="n_flows"):
            model.copy_time(MB(1), n_flows=0)

    def test_copy_time_validates_before_zero_byte_early_return(self):
        # the n_flows check must fire even when nbytes == 0 would
        # otherwise short-circuit to 0.0 and mask the caller bug
        model = CoreContentionModel(PCM_CONFIG, BandwidthModelConfig())
        with pytest.raises(ValueError, match="n_flows"):
            model.copy_time(0, n_flows=0)

    def test_aggregate_rate_zero_flows_is_zero_not_error(self):
        # aggregate over zero writers is a well-defined 0.0 (an idle
        # bus), unlike the per-writer quantities above
        model = CoreContentionModel(PCM_CONFIG, BandwidthModelConfig())
        assert model.aggregate_rate(0) == 0.0
