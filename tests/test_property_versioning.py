"""Property-based tests of the two-version commit protocol: whatever
sequence of writes, checkpoints and crashes occurs, restart always
recovers exactly the last *committed* data — never torn, never lost."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DRAM_CONFIG
from repro.core import NVMCheckpoint
from repro.memory import InMemoryStore

SIZE = 256

ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 255)),
        st.tuples(st.just("ckpt"), st.just(0)),
        st.tuples(st.just("crash"), st.just(0)),
    ),
    min_size=1,
    max_size=25,
)


@given(program=ops)
@settings(max_examples=60, deadline=None)
def test_restart_always_sees_last_committed(program):
    store = InMemoryStore()
    app = NVMCheckpoint("p", store=store)
    app.nvalloc("x", SIZE)

    current = np.zeros(SIZE, dtype=np.uint8)
    committed = None  # None until first checkpoint

    for op, val in program:
        if op == "write":
            payload = np.full(SIZE, val, dtype=np.uint8)
            app.chunk("x").write(0, payload)
            current = payload
        elif op == "ckpt":
            app.nvchkptall()
            committed = current.copy()
        else:  # crash + restart
            app.crash()
            if committed is None:
                # no committed state: restart must fail cleanly and the
                # experiment ends here
                from repro.errors import ReproError

                with pytest.raises(ReproError):
                    NVMCheckpoint.restart("p", store)
                return
            app, report = NVMCheckpoint.restart("p", store)
            got = app.chunk("x").view(np.uint8)
            assert np.array_equal(np.asarray(got), committed)
            current = committed.copy()

    # final crash at the end of every program
    app.crash()
    if committed is not None:
        app, _ = NVMCheckpoint.restart("p", store)
        assert np.array_equal(np.asarray(app.chunk("x").view(np.uint8)), committed)


@given(
    values=st.lists(st.integers(0, 255), min_size=2, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_version_slots_alternate_and_never_collide(values):
    store = InMemoryStore()
    app = NVMCheckpoint("p", store=store)
    c = app.nvalloc("x", SIZE)
    seen_slots = []
    for v in values:
        c.write(0, np.full(SIZE, v, dtype=np.uint8))
        app.nvchkptall()
        seen_slots.append(c.committed_version)
    # strict alternation between the two slots
    for a, b in zip(seen_slots, seen_slots[1:]):
        assert a != b
    assert set(seen_slots) <= {0, 1}


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_checksums_always_valid_after_commit(data):
    store = InMemoryStore()
    app = NVMCheckpoint("p", store=store)
    n = data.draw(st.integers(1, 4))
    for i in range(n):
        app.nvalloc(f"c{i}", SIZE)
    rounds = data.draw(st.integers(1, 4))
    for _ in range(rounds):
        for i in range(n):
            val = data.draw(st.integers(0, 255))
            app.chunk(f"c{i}").write(0, np.full(SIZE, val, dtype=np.uint8))
        app.nvchkptall()
        for i in range(n):
            assert app.chunk(f"c{i}").verify_checksum()
