"""The NVM kernel manager: nvmmap family, process metadata, restart
re-mapping, cache flush, phantom regions."""

import numpy as np
import pytest

from repro.errors import AllocationError, PersistenceError
from repro.memory import InMemoryStore, NVMKernelManager
from repro.units import MB, PAGE_SIZE


class TestNvmmap:
    def test_map_and_write_read(self, nvmm):
        r = nvmm.nvmmap("p0", "data", 8192)
        r.write(0, np.arange(1024, dtype=np.float64))
        got = r.read(0, 8192).view(np.float64)
        assert np.array_equal(got, np.arange(1024))

    def test_double_map_rejected(self, nvmm):
        nvmm.nvmmap("p0", "data", 4096)
        with pytest.raises(AllocationError):
            nvmm.nvmmap("p0", "data", 4096)

    def test_same_name_different_process_ok(self, nvmm):
        nvmm.nvmmap("p0", "data", 4096)
        nvmm.nvmmap("p1", "data", 4096)
        assert nvmm.region("p0", "data") is not nvmm.region("p1", "data")

    def test_unmap_releases_capacity(self, nvmm):
        before = nvmm.device.allocated
        nvmm.nvmmap("p0", "data", MB(1))
        nvmm.nvmunmap("p0", "data")
        assert nvmm.device.allocated == before

    def test_unmap_unknown_rejected(self, nvmm):
        with pytest.raises(AllocationError):
            nvmm.nvmunmap("p0", "ghost")

    def test_region_lookup_unknown(self, nvmm):
        with pytest.raises(AllocationError):
            nvmm.region("p0", "ghost")

    def test_capacity_charged_to_owner(self, nvmm):
        nvmm.nvmmap("p0", "a", MB(2))
        assert nvmm.device.allocated_by("p0") == MB(2)

    def test_process_regions_sorted(self, nvmm):
        nvmm.nvmmap("p0", "b", 4096)
        nvmm.nvmmap("p0", "a", 4096)
        nvmm.nvmmap("p1", "z", 4096)
        names = [r.name for r in nvmm.process_regions("p0")]
        assert names == ["a", "b"]


class TestRealloc:
    def test_grow_preserves_data(self, nvmm):
        r = nvmm.nvmmap("p0", "d", 4096)
        r.write(0, np.full(4096, 3, dtype=np.uint8))
        r2 = nvmm.nvmrealloc("p0", "d", 8192)
        assert r2 is r
        assert (r.read(0, 4096) == 3).all()
        assert r.nbytes == 8192

    def test_grow_charges_capacity_delta(self, nvmm):
        nvmm.nvmmap("p0", "d", 4096)
        before = nvmm.device.allocated
        nvmm.nvmrealloc("p0", "d", 12288)
        assert nvmm.device.allocated == before + 8192

    def test_shrink_releases(self, nvmm):
        nvmm.nvmmap("p0", "d", 8192)
        before = nvmm.device.allocated
        nvmm.nvmrealloc("p0", "d", 4096)
        assert nvmm.device.allocated == before - 4096

    def test_realloc_unknown_rejected(self, nvmm):
        with pytest.raises(AllocationError):
            nvmm.nvmrealloc("p0", "ghost", 4096)


class TestRestart:
    def test_metadata_lists_known_processes(self, nvmm):
        nvmm.nvmmap("p0", "a", 4096)
        nvmm.nvmmap("p1", "b", 4096)
        assert nvmm.known_processes() == ["p0", "p1"]

    def test_crash_then_load_restores_mapping(self, nvmm, store):
        r = nvmm.nvmmap("p0", "a", 8192)
        r.write(0, np.full(8192, 7, dtype=np.uint8))
        nvmm.cache_flush()
        nvmm.crash_process("p0")
        regions = nvmm.load_process("p0")
        assert (regions["a"].read() == 7).all()

    def test_load_idempotent_for_live_regions(self, nvmm):
        r = nvmm.nvmmap("p0", "a", 4096)
        regions = nvmm.load_process("p0")
        assert regions["a"] is r

    def test_load_detects_missing_data(self, nvmm, store):
        nvmm.nvmmap("p0", "a", 4096)
        nvmm.cache_flush()
        nvmm.crash_process("p0")
        store.delete("p0/a")
        with pytest.raises(PersistenceError):
            nvmm.load_process("p0")

    def test_unflushed_region_orphan_detected_on_remap(self, nvmm, store):
        """If a store region exists without a clean mapping (stale
        leftovers), nvmmap refuses rather than silently aliasing."""
        store.create("p0/a", 4096)
        with pytest.raises(PersistenceError):
            nvmm.nvmmap("p0", "a", 4096)


class TestPhantomRegions:
    def test_phantom_accounts_without_storing(self, nvmm, store):
        r = nvmm.nvmmap("p0", "ph", MB(4), phantom=True)
        assert not store.exists("p0/ph")
        moved = r.write_phantom(0, MB(1))
        assert moved == MB(1)
        assert nvmm.device.wear.bytes_written == MB(1)

    def test_phantom_read_returns_zeros(self, nvmm):
        r = nvmm.nvmmap("p0", "ph", 4096, phantom=True)
        assert not r.read(0, 4096).any()

    def test_phantom_survives_restart_via_metadata(self, nvmm):
        nvmm.nvmmap("p0", "ph", 4096, phantom=True)
        nvmm.cache_flush()
        nvmm.crash_process("p0")
        regions = nvmm.load_process("p0")
        assert regions["ph"].phantom
        assert regions["ph"].nbytes == 4096

    def test_phantom_bounds_checked(self, nvmm):
        from repro.errors import InvalidAddress

        r = nvmm.nvmmap("p0", "ph", 4096, phantom=True)
        with pytest.raises(InvalidAddress):
            r.write_phantom(4000, 200)


class TestNvDirtyIntegration:
    def test_writes_set_nvdirty_pages(self, nvmm):
        r = nvmm.nvmmap("p0", "a", 4 * PAGE_SIZE)
        r.write(PAGE_SIZE, np.zeros(10, dtype=np.uint8))
        assert r.pages.collect_nvdirty() == [1]


class TestCosts:
    def test_syscalls_accrue_cost(self, nvmm):
        nvmm.nvmmap("p0", "a", 4096)
        nvmm.nvmunmap("p0", "a")
        assert nvmm.syscall_count >= 2
        assert nvmm.accrued_cost > 0

    def test_cache_flush_cost_and_reset(self, nvmm):
        cost = nvmm.cache_flush()
        assert cost > 0
        total = nvmm.take_accrued_cost()
        assert total >= cost
        assert nvmm.take_accrued_cost() == 0.0
