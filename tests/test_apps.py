"""Application workload models: chunk layouts (Table IV), write
schedules, iteration behaviour, MADBench calibration."""

import pytest

from repro.apps import (
    ApplicationModel,
    CM1Model,
    ChunkSpec,
    GTCModel,
    LammpsModel,
    MADBench,
    RankBinding,
    SyntheticModel,
    WritePattern,
)
from repro.alloc import NVAllocator
from repro.core import make_standalone_context
from repro.units import MB


ALL_MODELS = [GTCModel, LammpsModel, CM1Model]


class TestChunkLayouts:
    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_total_matches_declared_checkpoint_size(self, model_cls):
        m = model_cls()
        total = m.checkpoint_bytes(0)
        assert total == pytest.approx(MB(m.checkpoint_mb_per_rank), rel=0.02)

    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_unique_chunk_names(self, model_cls):
        specs = model_cls().chunk_specs(0)
        names = [s.name for s in specs]
        assert len(names) == len(set(names))

    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_positive_sizes(self, model_cls):
        assert all(s.nbytes > 0 for s in model_cls().chunk_specs(0))

    def test_gtc_large_bucket_share(self):
        d = GTCModel().chunk_size_distribution()
        # Table IV: GTC ~45% above 100MB
        assert 35 <= d["above 100MB"] + d["50-100MB"] <= 60

    def test_gtc_has_write_once_large_chunk(self):
        """'few large chunks are modified only once' (Fig. 8 analysis)."""
        specs = GTCModel().chunk_specs(0)
        once = [s for s in specs if s.pattern == WritePattern.WRITE_ONCE]
        assert once and max(s.nbytes for s in once) >= MB(50)

    def test_lammps_31_chunks(self):
        assert len(LammpsModel().chunk_specs(0)) == 31

    def test_lammps_has_hot_chunk(self):
        """The 3-D molecular position array is hot (Fig. 6)."""
        specs = LammpsModel().chunk_specs(0)
        hot = [s for s in specs if s.pattern == WritePattern.HOT]
        assert len(hot) == 1
        assert hot[0].nbytes > MB(100)
        assert max(hot[0].write_fractions(1)) >= 0.95

    def test_cm1_no_chunk_above_100mb(self):
        """Table IV: CM1 has (almost) nothing above 100MB — the reason
        pre-copy helps it < 5%."""
        d = CM1Model().chunk_size_distribution()
        assert d["above 100MB"] <= 5

    def test_cm1_dominated_by_mid_bucket(self):
        d = CM1Model().chunk_size_distribution()
        assert d["50-100MB"] >= 40

    def test_small_chunks_override(self):
        few = GTCModel(small_chunks=10).chunk_specs(0)
        many = GTCModel().chunk_specs(0)
        assert len(few) < len(many)

    def test_specs_cached(self):
        m = GTCModel()
        assert m.chunk_specs(0) is m.chunk_specs(0)


class TestWriteSchedules:
    def test_write_once_only_in_iteration_zero(self):
        spec = ChunkSpec("x", 100, WritePattern.WRITE_ONCE)
        assert spec.write_fractions(0)
        assert spec.write_fractions(1) == ()

    def test_custom_fractions_override(self):
        spec = ChunkSpec("x", 100, WritePattern.PER_ITER, fractions=(0.5,))
        assert spec.write_fractions(3) == (0.5,)

    def test_default_fractions_by_pattern(self):
        for pattern in (WritePattern.PER_ITER, WritePattern.STAGED, WritePattern.HOT):
            spec = ChunkSpec("x", 100, pattern)
            assert spec.write_fractions(1)

    def test_hot_writes_near_interval_end(self):
        spec = ChunkSpec("x", 100, WritePattern.HOT)
        assert max(spec.write_fractions(1)) > 0.9


class TestIterationExecution:
    def _binding(self, model, ctx):
        alloc = NVAllocator("r0", ctx.nvmm, ctx.dram, phantom=True, clock=lambda: ctx.engine.now)
        binding = RankBinding(rank="r0", node_id=0, allocator=alloc, engine=ctx.engine)
        model.allocate(binding, 0)
        return binding

    def test_iteration_takes_at_least_compute_time(self):
        ctx = make_standalone_context(name="app")
        m = SyntheticModel(checkpoint_mb_per_rank=20, chunk_mb=10, iteration_compute_time=8.0)
        binding = self._binding(m, ctx)
        proc = ctx.engine.process(m.compute_iteration(binding, 0))
        ctx.engine.run()
        assert proc.ok
        assert ctx.engine.now >= 8.0

    def test_iteration_dirties_chunks(self):
        ctx = make_standalone_context(name="app")
        m = SyntheticModel(checkpoint_mb_per_rank=20, chunk_mb=10, iteration_compute_time=5.0)
        binding = self._binding(m, ctx)
        for c in binding.allocator.chunks():
            c.dirty_local = False
        ctx.engine.process(m.compute_iteration(binding, 0))
        ctx.engine.run()
        assert all(c.dirty_local for c in binding.allocator.chunks())

    def test_write_once_chunk_untouched_after_iteration_zero(self):
        ctx = make_standalone_context(name="app")
        m = SyntheticModel(
            checkpoint_mb_per_rank=20, chunk_mb=10,
            write_once_fraction=0.5, iteration_compute_time=5.0,
        )
        binding = self._binding(m, ctx)
        ctx.engine.process(m.compute_iteration(binding, 0))
        ctx.engine.run()
        once_chunk = binding.allocator.chunk("chunk_0")
        once_chunk.dirty_local = False
        proc = ctx.engine.process(m.compute_iteration(binding, 1))
        ctx.engine.run()
        assert proc.ok
        assert not once_chunk.dirty_local

    def test_fault_costs_extend_iteration(self):
        ctx = make_standalone_context(name="app")
        m = SyntheticModel(checkpoint_mb_per_rank=10, chunk_mb=10, iteration_compute_time=5.0)
        binding = self._binding(m, ctx)
        chunk = binding.allocator.chunk("chunk_0")
        chunk.mark_precopied("local")  # protected: next write faults
        ctx.engine.process(m.compute_iteration(binding, 0))
        ctx.engine.run()
        assert binding.fault_time > 0
        assert ctx.engine.now > 5.0


class TestSyntheticModel:
    def test_chunk_count_scales(self):
        m = SyntheticModel(checkpoint_mb_per_rank=100, chunk_mb=10)
        assert len(m.chunk_specs(0)) == 10

    def test_hot_and_once_fractions(self):
        m = SyntheticModel(
            checkpoint_mb_per_rank=100, chunk_mb=10,
            hot_fraction=0.2, write_once_fraction=0.3,
        )
        specs = m.chunk_specs(0)
        assert sum(1 for s in specs if s.pattern == WritePattern.HOT) == 2
        assert sum(1 for s in specs if s.pattern == WritePattern.WRITE_ONCE) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticModel(chunk_mb=0)
        with pytest.raises(ValueError):
            SyntheticModel(hot_fraction=0.8, write_once_fraction=0.5)


class TestMADBench:
    def test_46_percent_at_300mb(self):
        r = MADBench().run_point(300, writers=12)
        assert r.slowdown == pytest.approx(0.46, abs=0.04)

    def test_3x_sync_calls(self):
        r = MADBench().run_point(300, writers=12)
        assert r.sync_call_ratio == pytest.approx(3.0, rel=0.01)

    def test_31_percent_more_lock_wait_at_300mb(self):
        r = MADBench().run_point(300, writers=12)
        assert r.lock_wait_ratio == pytest.approx(1.31, abs=0.08)

    def test_gap_widens_with_size(self):
        results = MADBench().sweep([50, 150, 300])
        slowdowns = [r.slowdown for r in results]
        assert slowdowns == sorted(slowdowns)

    def test_ramdisk_always_slower(self):
        for r in MADBench().sweep():
            assert r.ramdisk.total > r.memory.total

    def test_multi_phase_scales_linearly(self):
        one = MADBench(phases=1).run_point(100)
        two = MADBench(phases=2).run_point(100)
        assert two.memory.total == pytest.approx(2 * one.memory.total)
