"""The Table-III allocation API: nvalloc/nv2dalloc/nvattach/nvrealloc/
nvdelete, metadata persistence, restart paths."""

import numpy as np
import pytest

from repro.alloc import NVAllocator, genid
from repro.errors import AllocationError, DuplicateChunkId, UnknownChunkId
from repro.memory import MemoryDevice, NVMKernelManager
from repro.config import DRAM_CONFIG
from repro.units import MB


class TestGenid:
    def test_stable(self):
        assert genid("ions") == genid("ions")

    def test_distinct(self):
        assert genid("ions") != genid("electrons")

    def test_48_bit(self):
        assert 0 <= genid("x") < 2**48


class TestNvalloc:
    def test_returns_chunk_with_dram_and_shadows(self, allocator):
        c = allocator.nvalloc("ions", MB(1))
        assert c.nbytes == MB(1)
        assert c.dram is not None
        assert c.n_versions == 2

    def test_duplicate_name_rejected(self, allocator):
        allocator.nvalloc("x", 1024)
        with pytest.raises(DuplicateChunkId):
            allocator.nvalloc("x", 1024)

    def test_nonpositive_size_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.nvalloc("x", 0)

    def test_non_persistent_has_no_shadow(self, allocator):
        c = allocator.nvalloc("scratch", 1024, pflag=False)
        assert c.n_versions == 0
        assert not c.persistent
        assert c not in allocator.persistent_chunks()

    def test_lookup_by_name_and_id(self, allocator):
        c = allocator.nvalloc("x", 1024)
        assert allocator.chunk("x") is c
        assert allocator.chunk(c.chunk_id) is c
        assert allocator.has_chunk("x")
        assert not allocator.has_chunk("ghost")

    def test_unknown_lookup(self, allocator):
        with pytest.raises(UnknownChunkId):
            allocator.chunk("ghost")
        with pytest.raises(UnknownChunkId):
            allocator.chunk(12345)

    def test_chunks_ordered_by_id(self, allocator):
        for name in ("zeta", "alpha", "mid"):
            allocator.nvalloc(name, 1024)
        ids = [c.chunk_id for c in allocator.chunks()]
        assert ids == sorted(ids)

    def test_checkpoint_bytes_sums_persistent_only(self, allocator):
        allocator.nvalloc("a", MB(1))
        allocator.nvalloc("b", MB(2))
        allocator.nvalloc("scratch", MB(4), pflag=False)
        assert allocator.checkpoint_bytes == MB(3)


class TestNv2dAllocAndAttach:
    def test_nv2dalloc_sizes_for_dtype(self, allocator):
        c = allocator.nv2dalloc("grid", 100, 200, dtype=np.float64)
        assert c.nbytes == 100 * 200 * 8
        assert c.view(np.float64, shape=(100, 200)).shape == (100, 200)

    def test_nvattach_copies_source(self, allocator):
        src = np.arange(256, dtype=np.float32)
        c = allocator.nvattach("existing", src)
        assert np.array_equal(c.view(np.float32), src)
        assert c.persistent

    def test_nvattach_2d_source(self, allocator):
        src = np.ones((16, 16))
        c = allocator.nvattach("m", src)
        assert c.nbytes == src.nbytes


class TestNvRealloc:
    def test_grow_preserves_data(self, allocator):
        c = allocator.nvalloc("x", 1024)
        c.write(0, np.arange(128, dtype=np.float64))
        allocator.nvrealloc("x", 2048)
        assert c.nbytes == 2048
        assert np.array_equal(c.view(np.float64)[:128], np.arange(128))

    def test_shrink(self, allocator):
        c = allocator.nvalloc("x", 2048)
        allocator.nvrealloc("x", 1024)
        assert c.nbytes == 1024
        assert c.versions[0].nbytes == 1024

    def test_same_size_noop(self, allocator):
        c = allocator.nvalloc("x", 1024)
        assert allocator.nvrealloc("x", 1024) is c

    def test_realloc_marks_dirty(self, allocator):
        c = allocator.nvalloc("x", 1024)
        c.dirty_local = False
        allocator.nvrealloc("x", 2048)
        assert c.dirty_local

    def test_invalid_size(self, allocator):
        allocator.nvalloc("x", 1024)
        with pytest.raises(AllocationError):
            allocator.nvrealloc("x", 0)


class TestNvDelete:
    def test_delete_removes_everything(self, allocator, ctx):
        c = allocator.nvalloc("x", MB(1))
        nvm_before = ctx.nvm.allocated
        allocator.nvdelete("x")
        assert not allocator.has_chunk("x")
        assert ctx.nvm.allocated == nvm_before - 2 * MB(1)

    def test_name_reusable_after_delete(self, allocator):
        allocator.nvalloc("x", 1024)
        allocator.nvdelete("x")
        c = allocator.nvalloc("x", 2048)
        assert c.nbytes == 2048

    def test_delete_unknown(self, allocator):
        with pytest.raises(UnknownChunkId):
            allocator.nvdelete("ghost")


class TestRestartPaths:
    def _commit_all(self, allocator, ctx):
        for c in allocator.persistent_chunks():
            c.stage_to_nvm()
        ctx.nvmm.cache_flush()
        for c in allocator.persistent_chunks():
            c.commit()
        allocator._persist_metadata()
        ctx.nvmm.cache_flush()

    def test_eager_restart_restores_all_chunks(self, allocator, ctx):
        data = np.arange(512, dtype=np.float64)
        allocator.nvalloc("a", 4096).write(0, data)
        allocator.nvalloc("b", 2048)
        self._commit_all(allocator, ctx)
        ctx.nvmm.store.crash()
        ctx.nvmm.crash_process("p0")
        re = NVAllocator.restart("p0", ctx.nvmm, MemoryDevice(DRAM_CONFIG))
        assert np.array_equal(re.chunk("a").view(np.float64)[:512], data)
        assert re.chunk("b").nbytes == 2048

    def test_nvalloc_pflag_reload_path(self, allocator, ctx):
        data = np.full(100, 3.25)
        allocator.nvalloc("a", 4096).write(0, data)
        self._commit_all(allocator, ctx)
        ctx.nvmm.store.crash()
        ctx.nvmm.crash_process("p0")
        fresh = NVAllocator("p0", ctx.nvmm, MemoryDevice(DRAM_CONFIG))
        c = fresh.nvalloc("a", 4096, pflag=True)
        assert np.array_equal(c.view(np.float64)[:100], data)
        assert c.committed_version == 0

    def test_nvalloc_reload_size_mismatch_rejected(self, allocator, ctx):
        allocator.nvalloc("a", 4096)
        self._commit_all(allocator, ctx)
        ctx.nvmm.crash_process("p0")
        fresh = NVAllocator("p0", ctx.nvmm, MemoryDevice(DRAM_CONFIG))
        with pytest.raises(AllocationError):
            fresh.nvalloc("a", 8192, pflag=True)

    def test_restart_without_metadata_rejected(self, ctx):
        with pytest.raises(UnknownChunkId):
            NVAllocator.restart("ghost", ctx.nvmm, MemoryDevice(DRAM_CONFIG))

    def test_uncommitted_chunk_restarts_empty(self, allocator, ctx):
        c = allocator.nvalloc("a", 4096)
        c.write(0, np.full(10, 9, dtype=np.uint8))
        allocator._persist_metadata()
        ctx.nvmm.cache_flush()  # metadata durable, data never staged
        ctx.nvmm.store.crash()
        ctx.nvmm.crash_process("p0")
        re = NVAllocator.restart("p0", ctx.nvmm, MemoryDevice(DRAM_CONFIG))
        assert re.chunk("a").committed_version == -1
        assert not re.chunk("a").view()[:10].any()

    def test_phantom_roundtrip(self, ctx, phantom_allocator):
        phantom_allocator.nvalloc("ph", MB(2)).touch()
        self._commit_all(phantom_allocator, ctx)
        ctx.nvmm.crash_process("p0")
        re = NVAllocator.restart("p0", ctx.nvmm, MemoryDevice(DRAM_CONFIG))
        assert re.chunk("ph").phantom
        assert re.chunk("ph").nbytes == MB(2)
