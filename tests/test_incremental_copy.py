"""Page-granular incremental copy: extents move fewer bytes, commit
identical content.

The stale-page maps are per (stream, version slot): under two-version
shadow buffering the in-progress slot is *two* checkpoints stale, so a
naive "dirty since last checkpoint" bitmap would under-copy.  Both
slots start fully stale, hence savings begin at the third checkpoint of
a chunk — these tests pin that schedule, the byte accounting, the trace
fields, and the acceptance criterion on the pinned 16-cell bench grid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CheckpointConfig, PrecopyPolicy
from repro.core import NVMCheckpoint
from repro.faults.checker import ConsistencyChecker, payload_digest
from repro.memory import InMemoryStore
from repro.metrics.trace import BUS, RingBufferSink

PAGE = 4096
A_BYTES = 32 * PAGE
B_BYTES = 8 * PAGE

#: per-round writes: (chunk, page_offset, page_count, fill); every
#: round ends with one coordinated checkpoint.  Round 0 initializes
#: fully; later rounds dirty small page runs.
SCRIPT = [
    [("a", 0, 32, 0x10), ("b", 0, 8, 0x80)],
    [("a", 4, 2, 0x11), ("b", 0, 1, 0x81)],
    [("a", 4, 2, 0x12), ("b", 0, 1, 0x82)],
    [("a", 20, 1, 0x13)],
]


def _run_script(granularity: str, store=None):
    """Run SCRIPT under one copy granularity; returns
    ``(app, per-checkpoint stats, per-checkpoint committed digests)``."""
    cfg = CheckpointConfig(
        precopy=PrecopyPolicy(mode="none", copy_granularity=granularity)
    )
    app = NVMCheckpoint("p", store=store or InMemoryStore(), checkpoint_config=cfg)
    app.nvalloc("a", A_BYTES)
    app.nvalloc("b", B_BYTES)
    stats, digests = [], []
    for writes in SCRIPT:
        for name, page_off, n_pages, fill in writes:
            app.chunk(name).write(
                page_off * PAGE, np.full(n_pages * PAGE, fill, dtype=np.uint8)
            )
        stats.append(app.nvchkptall())
        digests.append({
            name: payload_digest(
                app.chunk(name).committed_region().read(0, app.chunk(name).nbytes)
            )
            for name in ("a", "b")
        })
    return app, stats, digests


class TestCommittedContent:
    def test_digests_identical_across_granularities(self):
        """The incremental pipeline must commit byte-identical content
        to whole-chunk copies at every checkpoint."""
        _, _, chunk_digests = _run_script("chunk")
        _, _, page_digests = _run_script("page")
        assert chunk_digests == page_digests

    def test_savings_start_at_third_checkpoint(self):
        _, chunk_stats, _ = _run_script("chunk")
        _, page_stats, _ = _run_script("page")
        # both version slots start all-stale: the first two checkpoints
        # move the same bytes either way
        assert page_stats[0].bytes_copied == chunk_stats[0].bytes_copied
        assert page_stats[1].bytes_copied == chunk_stats[1].bytes_copied
        # checkpoint 2 re-stages slot 0, whose stale set is the union
        # of rounds 1 and 2: pages {4,5} of a and {0} of b
        assert chunk_stats[2].bytes_copied == A_BYTES + B_BYTES
        assert page_stats[2].bytes_copied == 3 * PAGE
        # checkpoint 3 re-stages slot 1 (stale = rounds 2+3: a pages
        # {4,5,20}, b page {0} from round 2).  Without pre-copy there
        # is no dirty tracking, so chunk-granular re-copies b whole
        # even though round 3 never wrote it
        assert chunk_stats[3].bytes_copied == A_BYTES + B_BYTES
        assert page_stats[3].bytes_copied == 4 * PAGE

    def test_restart_recovers_incremental_commits(self):
        store = InMemoryStore()
        app, _, digests = _run_script("page", store=store)
        a_view = np.asarray(app.chunk("a").view(np.uint8)).copy()
        app.crash()
        app2, _ = NVMCheckpoint.restart("p", store)
        assert np.array_equal(np.asarray(app2.chunk("a").view(np.uint8)), a_view)
        d = payload_digest(app2.chunk("a").committed_region().read(0, A_BYTES))
        assert d == digests[-1]["a"]


class TestConsistencyOracle:
    def test_checker_digests_match_across_granularities(self):
        """ConsistencyChecker's durable-state walk (the restart oracle)
        sees identical committed payloads under both granularities."""
        stores = {}
        oracle = {}
        for gran in ("chunk", "page"):
            store = InMemoryStore()
            app, _, digests = _run_script(gran, store=store)
            app.crash()
            stores[gran] = store
            oracle[gran] = digests[-1]
        assert oracle["chunk"] == oracle["page"]
        for gran, store in stores.items():
            report = ConsistencyChecker(store).check_process(
                "p", expected={k: {v} for k, v in oracle[gran].items()}
            )
            assert not report.violations, (gran, report.violations)
            assert not report.checksum_failures, (gran, report.checksum_failures)
            assert report.committed_chunks == 2


class TestTraceFields:
    def test_chunk_copied_events_carry_pages_and_bytes_saved(self):
        sink = RingBufferSink()
        BUS.attach(sink)
        try:
            _run_script("page")
        finally:
            BUS.detach(sink)
        copies = sink.of_kind("chunk.copied")
        assert copies, "no chunk.copied events emitted"
        for ev in copies:
            assert ev.pages > 0
            assert ev.bytes_saved >= 0
            # nbytes + bytes_saved reconstructs the chunk size
            assert ev.nbytes + ev.bytes_saved in (A_BYTES, B_BYTES)
        partial = [e for e in copies if e.bytes_saved > 0]
        assert partial, "no partial (extent) copy was ever traced"
        # chunk a's partial copies: 2 pages at checkpoint 2, 3 at 3
        a_partial = [e for e in partial if e.chunk == "a"]
        assert {(e.pages, e.nbytes) for e in a_partial} == {
            (2, 2 * PAGE), (3, 3 * PAGE)
        }

    def test_chunk_granular_events_report_zero_saved(self):
        sink = RingBufferSink()
        BUS.attach(sink)
        try:
            _run_script("chunk")
        finally:
            BUS.detach(sink)
        for ev in sink.of_kind("chunk.copied"):
            assert ev.bytes_saved == 0
            assert ev.pages * PAGE >= ev.nbytes


class TestPrecopyIncremental:
    def _standalone(self, granularity: str):
        from repro.alloc import NVAllocator
        from repro.core import LocalCheckpointer, make_standalone_context
        from repro.units import MB

        ctx = make_standalone_context(name=f"inc-{granularity}")
        alloc = NVAllocator(
            "p0", ctx.nvmm, ctx.dram, phantom=True, clock=lambda: ctx.engine.now
        )
        big = alloc.nvalloc("big", MB(8))
        small = alloc.nvalloc("small", MB(2))
        ck = LocalCheckpointer(
            ctx, alloc, PrecopyPolicy(mode="cpc", copy_granularity=granularity)
        )
        ck.start_background()

        def app():
            for _ in range(4):
                # one-page writes at fixed offsets: tiny extents
                big.touch(PAGE, offset=PAGE)
                small.touch(PAGE, offset=0)
                yield ctx.engine.timeout(5.0)
                yield from ck.checkpoint(blocking=False)
            ck.stop_background()

        ctx.engine.process(app(), name="app")
        ctx.engine.run()
        return ck

    def test_cpc_precopy_moves_fewer_bytes_page_granular(self):
        chunk_ck = self._standalone("chunk")
        page_ck = self._standalone("page")
        assert chunk_ck.checkpoints_done == page_ck.checkpoints_done == 4
        assert page_ck.total_bytes_to_nvm < chunk_ck.total_bytes_to_nvm
        # and the pre-copy stream itself went extent-granular
        assert (
            page_ck.precopy.stats.bytes_copied < chunk_ck.precopy.stats.bytes_copied
        )


class TestPinnedGridAcceptance:
    """Acceptance: incremental mode on the pinned 16-cell bench grid
    moves strictly fewer checkpoint bytes than chunk-granular on every
    cell (LAMMPS' STAGED chunks give each cell partial-chunk dirtiness
    by the third local checkpoint) without changing the workload."""

    @pytest.fixture(scope="class")
    def paired_grids(self):
        from repro.exec.grid import run_grid
        from repro.tools.bench import PINNED_GRID
        from repro.tools.sweep import parse_sweeps

        base, axes_specs = PINNED_GRID
        axes = parse_sweeps(list(axes_specs))
        chunk = run_grid(base, axes, workers=1, cache=None)
        page = run_grid(
            base + ["--copy-granularity", "page"], axes, workers=1, cache=None
        )
        return chunk.records, page.records

    @staticmethod
    def _ckpt_gb(rec: dict) -> float:
        return (
            rec["local.coordinated_gb"]
            + rec["local.precopy_gb"]
            + rec["remote.round_gb"]
            + rec["remote.stream_gb"]
        )

    def test_every_cell_moves_strictly_fewer_bytes(self, paired_grids):
        chunk_recs, page_recs = paired_grids
        assert len(chunk_recs) == len(page_recs) == 16
        for c_rec, p_rec in zip(chunk_recs, page_recs):
            coords = (c_rec["sweep.mode"], c_rec["sweep.nvm-gbps"])
            assert coords == (p_rec["sweep.mode"], p_rec["sweep.nvm-gbps"])
            assert self._ckpt_gb(p_rec) < self._ckpt_gb(c_rec), (
                f"cell {coords}: incremental moved no fewer bytes"
            )

    def test_workload_unchanged_by_granularity(self, paired_grids):
        """Copy granularity changes the bytes moved, never the work
        simulated: iteration counts, checkpoint counts and failure
        schedules stay identical cell-for-cell."""
        chunk_recs, page_recs = paired_grids
        for c_rec, p_rec in zip(chunk_recs, page_recs):
            for key in (
                "n_ranks", "local.checkpoints", "remote.rounds",
                "failures.soft", "failures.hard",
            ):
                assert c_rec[key] == p_rec[key], (key, c_rec["sweep.mode"])
