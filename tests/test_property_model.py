"""Property-based tests of the §III analytic model: monotonicity in
every physically-meaningful direction and fixed-point stability."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models import ModelParams, MultilevelModel, efficiency
from repro.units import MB, MB_per_sec

param_sets = st.fixed_dictionaries(
    {
        "compute_time": st.floats(600.0, 86_400.0),
        "checkpoint_mb": st.floats(10.0, 2000.0),
        "nvm_mb": st.floats(50.0, 2000.0),
        "remote_mb": st.floats(50.0, 2000.0),
        "local_interval": st.floats(10.0, 600.0),
        "remote_multiple": st.integers(1, 10),
        "mtbf_local": st.floats(600.0, 1e6),
        "mtbf_remote": st.floats(3600.0, 1e7),
        "overlap": st.floats(0.0, 0.95),
    }
)


def build(d, **over):
    kw = dict(
        compute_time=d["compute_time"],
        checkpoint_bytes=MB(d["checkpoint_mb"]),
        nvm_bw_per_core=MB_per_sec(d["nvm_mb"]),
        remote_bw=MB_per_sec(d["remote_mb"]),
        local_interval=d["local_interval"],
        remote_interval=d["local_interval"] * d["remote_multiple"],
        mtbf_local=d["mtbf_local"],
        mtbf_remote=d["mtbf_remote"],
        precopy_overlap=d["overlap"],
    )
    kw.update(over)
    return ModelParams(**kw)


@given(d=param_sets)
@settings(max_examples=150, deadline=None)
def test_total_at_least_compute(d):
    assert MultilevelModel(build(d)).total_time() >= d["compute_time"]


@given(d=param_sets)
@settings(max_examples=150, deadline=None)
def test_efficiency_in_unit_interval(d):
    assert 0.0 < efficiency(build(d)) <= 1.0


@given(d=param_sets)
@settings(max_examples=100, deadline=None)
def test_monotone_in_precopy_overlap(d):
    lo = MultilevelModel(build(d, precopy_overlap=0.0)).total_time()
    hi = MultilevelModel(build(d, precopy_overlap=0.9)).total_time()
    assert hi <= lo + 1e-6


@given(d=param_sets)
@settings(max_examples=100, deadline=None)
def test_monotone_in_local_mtbf(d):
    frail = MultilevelModel(build(d, mtbf_local=max(600.0, d["mtbf_local"] / 4))).total_time()
    sturdy = MultilevelModel(build(d, mtbf_local=d["mtbf_local"] * 4)).total_time()
    assert sturdy <= frail + 1e-6


@given(d=param_sets)
@settings(max_examples=100, deadline=None)
def test_monotone_in_nvm_bandwidth(d):
    slow = MultilevelModel(
        build(d, nvm_bw_per_core=MB_per_sec(d["nvm_mb"] / 2))
    ).total_time()
    fast = MultilevelModel(
        build(d, nvm_bw_per_core=MB_per_sec(d["nvm_mb"] * 2))
    ).total_time()
    assert fast <= slow + 1e-6


@given(d=param_sets)
@settings(max_examples=100, deadline=None)
def test_fixed_point_is_self_consistent(d):
    m = MultilevelModel(build(d))
    bd = m.solve()
    r_restart, r_recomp = m.remote_restart_terms(bd.total)
    assert bd.remote_restart == pytest.approx(r_restart, rel=1e-6, abs=1e-9)
    assert bd.remote_recompute == pytest.approx(r_recomp, rel=1e-6, abs=1e-9)


@given(d=param_sets)
@settings(max_examples=100, deadline=None)
def test_breakdown_components_nonnegative(d):
    bd = MultilevelModel(build(d)).solve()
    assert bd.local_checkpoint >= 0
    assert bd.remote_overhead >= 0
    assert bd.local_restart >= 0
    assert bd.remote_recompute >= 0
