"""The deprecated-shim import ban (``make lint``'s AST gate).

Two halves: the checker itself flags each banned pattern (and only
those), and the live ``src/`` tree is clean — no non-test module
imports the deprecation shims the refactor left behind.
"""

from __future__ import annotations

import os
import textwrap

from repro.tools.lintcheck import check_file, check_tree

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _check_source(tmp_path, source: str, filename: str = "mod.py"):
    path = tmp_path / filename
    path.write_text(textwrap.dedent(source))
    return check_file(str(path))


def test_flags_make_pfs_transfer_import(tmp_path):
    vs = _check_source(
        tmp_path, "from repro.baselines.pfs import make_pfs_transfer\n"
    )
    assert len(vs) == 1 and "make_pfs_transfer" in vs[0][2]
    assert "PfsDestination" in vs[0][2]  # the fix is named in the message


def test_flags_checkpoint_stats_from_local(tmp_path):
    for stmt in (
        "from repro.core.local import CheckpointStats",
        "from .local import CheckpointStats",
    ):
        vs = _check_source(tmp_path, stmt + "\n")
        assert len(vs) == 1 and "repro.core.engine" in vs[0][2] or ".engine" in vs[0][2]


def test_flags_checkpoint_sync_call(tmp_path):
    vs = _check_source(tmp_path, "def f(ck):\n    return ck.checkpoint_sync()\n")
    assert len(vs) == 1 and "checkpoint_sync" in vs[0][2]


def test_flags_checkpoint_sync_definition(tmp_path):
    """Since 1.1.0 the shim is deleted outright — *defining* a method
    of that name anywhere (even its old home) is a violation, so the
    alias cannot be quietly reintroduced."""
    vs = _check_source(
        tmp_path,
        "class Ck:\n    def checkpoint_sync(self):\n        return None\n",
    )
    assert any("banned definition" in v[2] for v in vs)
    engine_home = tmp_path / "core"
    engine_home.mkdir()
    path = engine_home / "engine.py"
    path.write_text("def checkpoint_sync():\n    return None\n")
    assert check_file(str(path)) != []  # the old exemption is gone


def test_clean_module_passes(tmp_path):
    vs = _check_source(
        tmp_path,
        """
        from repro.core.engine import CheckpointEngine, CheckpointStats
        from repro.core.local import LocalCheckpointer
        from repro.core.destination import PfsDestination

        def f(ck):
            return ck.checkpoint(blocking=False)
        """,
    )
    assert vs == []


def test_defining_modules_are_exempt(tmp_path):
    d = tmp_path / "baselines"
    d.mkdir()
    path = d / "pfs.py"
    path.write_text("def make_pfs_transfer(pfs, rank):\n    return None\n")
    assert check_file(str(path)) == []


def test_syntax_error_is_reported_not_raised(tmp_path):
    vs = _check_source(tmp_path, "def broken(:\n")
    assert len(vs) == 1 and "syntax error" in vs[0][2]


def test_src_tree_is_clean():
    violations = check_tree(SRC_ROOT)
    assert violations == [], "\n".join(
        f"{p}:{ln}: {msg}" for p, ln, msg in violations
    )
