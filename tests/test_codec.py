"""The payload-representation layer: codecs, block store, crash matrix.

Three concerns live here:

* **Exact-mode codecs** — every codec's ``decode(encode(x)) == x``
  byte transform on deterministic inputs, the loud-failure contracts
  (delta against the wrong base raises, dedup digest mismatch raises),
  and the wire-cost orderings the planner relies on (a sparse delta is
  smaller than a full copy; a re-encoded dedup payload ships only
  references).

* **BlockStore transactionality** — stage/commit/abort/rebuild
  refcount accounting, double-buffer overwrite decrements, and the
  negative-refcount / unknown-digest guards.

* **The codec crash matrix** — the ``codec.store.commit.*`` points are
  excluded from the default fault matrix (they only fire under a
  non-raw codec); this file runs them through a codec-enabled
  :class:`CrashConsistencyHarness`, and closes the loop with a
  real-payload checkpoint -> crash -> restart cycle whose block-digest
  verification must find zero mismatches.

``tests/test_property_codec.py`` holds the Hypothesis generalization
of the round-trip and refcount invariants.
"""

import numpy as np
import pytest

from repro.alloc import NVAllocator
from repro.config import PrecopyPolicy
from repro.core import LocalCheckpointer, RestartManager, make_standalone_context
from repro.core.codec import (
    DEFAULT_BLOCK,
    AutoCodec,
    BlockStore,
    DedupCodec,
    DeltaCodec,
    Payload,
    RawCodec,
    block_digests,
    codec_names,
    content_digest,
    resolve_codec,
)
from repro.errors import AllReplicasLost, CheckpointError, CodecError, ConfigError
from repro.faults.harness import CONSISTENT_OUTCOMES, CrashConsistencyHarness
from repro.faults.plan import FaultPlan, ScriptedFault
from repro.sim import Engine

pytestmark = pytest.mark.codec


def _buf(seed: int, n: int) -> bytes:
    return np.random.default_rng(seed).integers(0, 256, size=n, dtype=np.uint8).tobytes()


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------


def test_registry_names_and_resolution():
    assert codec_names() == ["auto", "dedup", "delta", "raw"]
    for name in codec_names():
        assert resolve_codec(name).name == name
    with pytest.raises(ConfigError):
        resolve_codec("gzip")


def test_policy_rejects_unknown_codec_and_bad_block():
    with pytest.raises(ConfigError):
        PrecopyPolicy(codec="gzip")
    with pytest.raises(ConfigError):
        PrecopyPolicy(codec="auto", codec_block=3000)
    assert not PrecopyPolicy().codec_enabled
    assert PrecopyPolicy(codec="delta").codec_enabled


# ---------------------------------------------------------------------------
# Exact-mode transforms.
# ---------------------------------------------------------------------------


def test_raw_round_trip_and_identity_cost():
    data = _buf(1, 10_000)
    p = RawCodec().encode_bytes(data)
    assert (p.kind, p.codec) == ("full", "raw")
    assert p.wire_bytes == p.logical_bytes == len(data)
    assert p.saved_bytes == 0
    assert RawCodec().decode_bytes(p) == data


def test_delta_round_trip_sparse_change_is_cheap():
    base = _buf(2, 64 * 1024)
    data = bytearray(base)
    data[100:164] = _buf(3, 64)  # one small dirty run
    p = DeltaCodec().encode_bytes(bytes(data), base=base)
    assert p.kind == "delta"
    assert DeltaCodec().decode_bytes(p, base=base) == bytes(data)
    # the wire carries ~the changed run, not the chunk
    assert p.wire_bytes < len(base) // 8
    assert 0 < p.changed_bytes <= 64


def test_delta_identical_buffers_ship_headers_only():
    base = _buf(4, 8192)
    p = DeltaCodec().encode_bytes(base, base=base)
    assert p.changed_bytes == 0
    assert p.data == b""
    assert DeltaCodec().decode_bytes(p, base=base) == base


def test_delta_requires_base_and_matching_length():
    data = _buf(5, 4096)
    with pytest.raises(CodecError):
        DeltaCodec().encode_bytes(data)
    with pytest.raises(CodecError):
        DeltaCodec().encode_bytes(data, base=data[:-1])


def test_delta_against_wrong_base_fails_loudly():
    base = _buf(6, 4096)
    data = _buf(7, 4096)
    p = DeltaCodec().encode_bytes(data, base=base)
    wrong = bytearray(base)
    wrong[0] ^= 0xFF
    with pytest.raises(CodecError, match="base mismatch"):
        DeltaCodec().decode_bytes(p, base=bytes(wrong))
    # silent corruption would be worse than the raise: verify the
    # correct base still round-trips after the failed attempt
    assert DeltaCodec().decode_bytes(p, base=base) == data


def test_dedup_round_trip_and_reference_growth():
    store = BlockStore()
    data = _buf(8, 6 * DEFAULT_BLOCK)
    first = DedupCodec().encode_bytes(data, store=store)
    assert (first.blocks_new, first.blocks_ref) == (6, 0)
    assert DedupCodec().decode_bytes(first, store=store) == data
    # re-encoding identical content ships pure references
    second = DedupCodec().encode_bytes(data, store=store)
    assert (second.blocks_new, second.blocks_ref) == (0, 6)
    assert second.wire_bytes < first.wire_bytes
    assert DedupCodec().decode_bytes(second, store=store) == data


def test_dedup_repeated_blocks_dedupe_within_one_payload():
    store = BlockStore()
    blk = _buf(9, DEFAULT_BLOCK)
    data = blk * 4
    p = DedupCodec().encode_bytes(data, store=store)
    assert p.blocks_new == 1 and p.blocks_ref == 3
    assert DedupCodec().decode_bytes(p, store=store) == data


def test_dedup_tail_block_and_empty_input():
    store = BlockStore()
    data = _buf(10, DEFAULT_BLOCK + 7)  # ragged tail
    p = DedupCodec().encode_bytes(data, store=store)
    assert p.blocks == 2
    assert DedupCodec().decode_bytes(p, store=store) == data
    empty = DedupCodec().encode_bytes(b"", store=store)
    assert DedupCodec().decode_bytes(empty, store=store) == b""


def test_dedup_requires_store():
    with pytest.raises(CodecError):
        DedupCodec().encode_bytes(b"x")
    with pytest.raises(CodecError):
        DedupCodec().decode_bytes(
            Payload(kind="dedup", codec="dedup", logical_bytes=1, wire_bytes=1)
        )


def test_auto_picks_cheapest_and_decodes_via_kind():
    store = BlockStore()
    base = _buf(11, 8 * DEFAULT_BLOCK)
    data = bytearray(base)
    data[0:32] = _buf(12, 32)
    auto = AutoCodec()
    p = auto.encode_bytes(bytes(data), base=base, store=store)
    assert set(p.candidates) == {"raw", "delta", "dedup"}
    assert p.wire_bytes == min(p.candidates.values())
    assert p.codec == "delta"  # one dirty run beats shipping blocks
    assert auto.decode_bytes(p, base=base, store=store) == bytes(data)
    # incompressible novel content with no base: raw must win
    novel = auto.encode_bytes(_buf(13, 2 * DEFAULT_BLOCK), store=store)
    assert novel.codec == "raw"
    assert auto.decode_bytes(novel, store=store) == _buf(13, 2 * DEFAULT_BLOCK)


def test_block_digests_localize_change():
    data = _buf(14, 4 * DEFAULT_BLOCK)
    d1 = block_digests(np.frombuffer(data, dtype=np.uint8))
    mutated = bytearray(data)
    mutated[2 * DEFAULT_BLOCK] ^= 1
    d2 = block_digests(np.frombuffer(bytes(mutated), dtype=np.uint8))
    assert list(d1 != d2) == [False, False, True, False]
    assert content_digest(data) != content_digest(bytes(mutated))


# ---------------------------------------------------------------------------
# BlockStore transactionality.
# ---------------------------------------------------------------------------


def _digests(*vals: int) -> np.ndarray:
    return np.array(vals, dtype=np.uint64)


def test_store_stage_is_invisible_until_commit():
    s = BlockStore()
    s.stage("c", 0, np.array([0, 1]), _digests(10, 20))
    assert s.unique_blocks == 0 and not s.has(10)
    assert s.commit() == 2
    assert s.has(10) and s.has(20) and s.refcount(10) == 1
    assert list(s.slot_digests("c", 0)) == [10, 20]


def test_store_abort_and_begin_round_discard_staged():
    s = BlockStore()
    s.stage("c", 0, np.array([0]), _digests(10))
    s.abort()
    assert s.commit() == 0
    s.stage("c", 0, np.array([0]), _digests(10))
    s.begin_round()
    assert s.commit() == 0 and s.unique_blocks == 0


def test_store_overwrite_decrements_old_digest():
    s = BlockStore()
    s.stage("c", 0, np.array([0, 1]), _digests(10, 20))
    s.commit()
    s.stage("c", 0, np.array([0]), _digests(30))
    s.commit()
    assert not s.has(10) and s.has(20) and s.has(30)
    # shared digest across two slots holds refcount 2 and survives
    # one slot dropping it
    s.stage("c", 1, np.array([0]), _digests(20))
    s.commit()
    assert s.refcount(20) == 2
    s.stage("c", 1, np.array([0]), _digests(40))
    s.commit()
    assert s.refcount(20) == 1


def test_store_rebuild_matches_slot_truth():
    s = BlockStore()
    s.stage("a", 0, np.array([0, 1]), _digests(10, 20))
    s.stage("b", 0, np.array([0]), _digests(20))
    s.commit()
    before = (s.unique_blocks, s.total_refs, s.refcount(20))
    # simulate a torn index: wipe the cache, keep the durable maps
    s._digests = s._digests[:0]
    s._counts = s._counts[:0]
    s.rebuild()
    assert (s.unique_blocks, s.total_refs, s.refcount(20)) == before == (2, 3, 2)


def test_store_drop_chunk_releases_references():
    s = BlockStore()
    s.stage("a", 0, np.array([0]), _digests(10))
    s.stage("b", 0, np.array([0]), _digests(10))
    s.commit()
    s.drop_chunk("a")
    assert s.refcount(10) == 1
    s.drop_chunk("b")
    assert s.unique_blocks == 0
    s.drop_chunk("never-seen")  # no-op, no raise


def test_store_refcount_guards_raise():
    s = BlockStore()
    s.stage("a", 0, np.array([0]), _digests(10))
    s.commit()
    with pytest.raises(CheckpointError):
        s._apply(np.empty(0, np.uint64), _digests(99))  # unknown decref
    with pytest.raises(CheckpointError):
        s._apply(np.empty(0, np.uint64), _digests(10, 10))  # 1 - 2 < 0


def test_store_contains_vectorized():
    s = BlockStore()
    s.stage("a", 0, np.array([0, 1, 2]), _digests(10, 20, 30))
    s.commit()
    hits = s.contains(_digests(20, 99, 10))
    assert list(hits) == [True, False, True]


# ---------------------------------------------------------------------------
# The codec crash matrix (excluded from the default matrix: these
# points only fire when a non-raw codec stages into the block store).
# ---------------------------------------------------------------------------

CODEC_POINTS = [
    "codec.store.commit.before",
    "codec.store.commit.mid",
    "codec.store.commit.done",
]


@pytest.mark.faults
@pytest.mark.parametrize("point_name", CODEC_POINTS)
@pytest.mark.parametrize("codec", ["delta", "dedup", "auto"])
def test_codec_crash_matrix(point_name, codec):
    """Crash inside the block-store commit (clean-before, torn-mid,
    clean-after) under every non-raw codec: recovery must still
    round-trip a legal application state through the survived store."""
    harness = CrashConsistencyHarness(codec=codec)
    plan = FaultPlan(
        [ScriptedFault(point_name, hit=2)], name=f"{codec}@{point_name}"
    )
    result = harness.run(plan)
    assert all(f.consumed for f in plan.faults), (
        f"{codec}@{point_name}: never reached the crash point"
    )
    assert result.crash_point == point_name
    assert result.report is not None and result.report.ok, (
        f"{codec}@{point_name}: {result.report.summary() if result.report else 'no report'}"
    )
    assert result.outcome in CONSISTENT_OUTCOMES, (
        f"{codec}@{point_name}: outcome {result.outcome!r} ({result.detail})"
    )
    assert result.restored


@pytest.mark.faults
def test_codec_points_unreachable_under_raw():
    """The default (raw) harness never stages into a block store, so a
    plan targeting a codec point must simply never fire."""
    harness = CrashConsistencyHarness()  # codec="raw"
    plan = FaultPlan([ScriptedFault("codec.store.commit.mid", hit=1)])
    result = harness.run(plan)
    assert result.crash_point is None
    assert not any(f.consumed for f in plan.faults)


# ---------------------------------------------------------------------------
# Real-payload restart: block-digest verification end to end.
# ---------------------------------------------------------------------------


def _checkpoint_crash_restart(codec: str):
    """Two codec checkpoints over real content, a power loss, and a
    digest-verified restart; returns the RestartReport + checkpointer."""
    engine = Engine()
    ctx = make_standalone_context(name="n0", engine=engine)
    alloc = NVAllocator("r0", ctx.nvmm, ctx.dram, phantom=False, clock=lambda: engine.now)
    ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(mode="none", codec=codec))
    rng = np.random.default_rng(41)
    a = alloc.nvalloc("a", 64 * 1024)
    a.write(0, rng.integers(0, 255, size=64 * 1024, dtype=np.uint8))
    b = alloc.nvalloc("b", 32 * 1024)
    b.write(0, np.zeros(32 * 1024, dtype=np.uint8))
    p1 = engine.process(ck.checkpoint(blocking=False))
    engine.run()
    a.write(0, rng.integers(0, 255, size=4096, dtype=np.uint8))
    b.write(0, np.zeros(32 * 1024, dtype=np.uint8))
    p2 = engine.process(ck.checkpoint(blocking=False))
    engine.run()
    assert p1.ok and p2.ok
    ctx.nvmm.store.crash()
    ctx.nvmm.crash_process("r0")
    report = RestartManager(ctx).restart_process_sync(
        "r0", block_store=ck.destination.block_store
    )
    return report, ck


@pytest.mark.parametrize("codec", ["delta", "dedup", "auto"])
def test_restart_digest_verification_passes(codec):
    report, ck = _checkpoint_crash_restart(codec)
    assert report.chunks_local == 2 and not report.corrupted_chunks
    assert report.blocks_verified > 0
    assert report.digest_failures == 0
    # both checkpoints committed through the store
    assert ck.destination.block_store.commits == 2


def test_restart_digest_verification_catches_corruption():
    """Flip one committed digest in the store: the restart must treat
    the local version as corrupt and — with no remote replica to fall
    back to — refuse to restore it, rather than silently trusting the
    map."""
    engine = Engine()
    ctx = make_standalone_context(name="n0", engine=engine)
    alloc = NVAllocator("r0", ctx.nvmm, ctx.dram, phantom=False, clock=lambda: engine.now)
    ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(mode="none", codec="auto"))
    a = alloc.nvalloc("a", 16 * 1024)
    a.write(0, np.random.default_rng(42).integers(0, 255, size=16 * 1024, dtype=np.uint8))
    engine.process(ck.checkpoint(blocking=False))
    engine.run()
    store = ck.destination.block_store
    (key,) = [k for k in store._slots if k[0] == "a"]
    slot_map = store._slots[key]
    nz = np.flatnonzero(slot_map)
    slot_map[nz[0]] ^= np.uint64(1)
    ctx.nvmm.store.crash()
    ctx.nvmm.crash_process("r0")
    with pytest.raises(AllReplicasLost, match="'a'"):
        RestartManager(ctx).restart_process_sync("r0", block_store=store)
