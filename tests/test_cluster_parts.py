"""Cluster building blocks: barrier, failure injection, node/cluster
construction."""

import pytest

from repro.apps import SyntheticModel
from repro.cluster import Barrier, Cluster, FailureInjector
from repro.config import CheckpointConfig, ClusterConfig, FailureConfig
from repro.errors import ClusterError, SimulationError
from repro.sim import RngStreams


class TestBarrier:
    def test_releases_when_all_arrive(self, engine):
        b = Barrier(engine, 3)
        arrived = []

        def party(i, delay):
            yield engine.timeout(delay)
            yield b.wait()
            arrived.append((i, engine.now))

        for i, d in enumerate((1.0, 2.0, 3.0)):
            engine.process(party(i, d))
        engine.run()
        assert all(t == 3.0 for _, t in arrived)

    def test_cyclic_generations(self, engine):
        b = Barrier(engine, 2)
        log = []

        def party(i):
            for round_ in range(3):
                yield engine.timeout(1.0 + i * 0.1)
                yield b.wait()
                log.append(round_)

        engine.process(party(0))
        engine.process(party(1))
        engine.run()
        assert log == [0, 0, 1, 1, 2, 2]
        assert b.generation == 3

    def test_break_all_fails_waiters(self, engine):
        b = Barrier(engine, 2)
        outcome = []

        def party():
            try:
                yield b.wait()
            except SimulationError:
                outcome.append("broken")

        engine.process(party())
        engine.run()
        assert b.break_all() == 1
        engine.run()
        assert outcome == ["broken"]

    def test_reset_resizes(self, engine):
        b = Barrier(engine, 3)
        b.reset(parties=2)
        done = []

        def party():
            yield b.wait()
            done.append(True)

        engine.process(party())
        engine.process(party())
        engine.run()
        assert len(done) == 2

    def test_validation(self, engine):
        with pytest.raises(SimulationError):
            Barrier(engine, 0)
        with pytest.raises(SimulationError):
            Barrier(engine, 2).reset(parties=0)


class TestFailureInjector:
    def make(self, mtbf_l=100.0, mtbf_r=300.0, nodes=4, seed=1):
        return FailureInjector(
            FailureConfig(mtbf_local=mtbf_l, mtbf_remote=mtbf_r, seed=seed),
            nodes,
            RngStreams(seed),
        )

    def test_deterministic_given_seed(self):
        a = [self.make(seed=5).next_failure() for _ in range(1)]
        b = [self.make(seed=5).next_failure() for _ in range(1)]
        assert a == b

    def test_strictly_increasing_times(self):
        inj = self.make()
        times = [inj.next_failure().time for _ in range(50)]
        assert times == sorted(times)
        assert len(set(times)) == 50

    def test_peek_does_not_consume(self):
        inj = self.make()
        p = inj.peek()
        assert inj.next_failure() == p

    def test_soft_fraction_statistics(self):
        inj = self.make(mtbf_l=100.0, mtbf_r=300.0)
        kinds = [inj.next_failure().kind for _ in range(3000)]
        soft = kinds.count("soft") / len(kinds)
        assert soft == pytest.approx(0.75, abs=0.05)

    def test_mean_interarrival(self):
        inj = self.make(mtbf_l=100.0, mtbf_r=300.0, nodes=4)
        # lambda = 4*(1/100 + 1/300) per second -> mean gap 18.75 s
        times = [inj.next_failure().time for _ in range(4000)]
        gaps = [b - a for a, b in zip([0] + times, times)]
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(18.75, rel=0.1)

    def test_nodes_uniform(self):
        inj = self.make(nodes=4)
        nodes = [inj.next_failure().node for _ in range(4000)]
        for n in range(4):
            assert nodes.count(n) / len(nodes) == pytest.approx(0.25, abs=0.05)

    def test_schedule_until(self):
        inj = self.make()
        events = inj.schedule_until(100.0)
        assert all(e.time <= 100.0 for e in events)
        nxt = inj.next_failure()
        assert nxt.time > 100.0

    def test_expected_failures(self):
        inj = self.make(mtbf_l=100.0, mtbf_r=300.0, nodes=1)
        assert inj.expected_failures(300.0) == pytest.approx(4.0)


class TestClusterBuild:
    def test_build_distributes_ranks(self):
        cluster = Cluster(ClusterConfig(nodes=4))
        cluster.build(
            SyntheticModel(checkpoint_mb_per_rank=10),
            CheckpointConfig(),
            ranks_per_node=3,
        )
        assert cluster.n_ranks == 12
        assert all(len(n.ranks) == 3 for n in cluster.nodes)

    def test_default_reserves_helper_core(self):
        cluster = Cluster(ClusterConfig(nodes=2))
        cluster.build(SyntheticModel(checkpoint_mb_per_rank=10), CheckpointConfig())
        # 12 cores - 1 helper core
        assert all(len(n.ranks) == 11 for n in cluster.active_nodes)

    def test_helpers_wired_to_cross_rack_buddies(self):
        cluster = Cluster(ClusterConfig(nodes=4))
        cluster.build(
            SyntheticModel(checkpoint_mb_per_rank=10),
            CheckpointConfig(),
            ranks_per_node=2,
        )
        for node in cluster.nodes:
            assert node.helper is not None
            assert node.helper.buddy_id != node.node_id

    def test_no_remote_mode(self):
        cluster = Cluster(ClusterConfig(nodes=2))
        cluster.build(
            SyntheticModel(checkpoint_mb_per_rank=10),
            CheckpointConfig(),
            ranks_per_node=2,
            with_remote=False,
        )
        assert cluster.helpers() == []

    def test_double_build_rejected(self):
        cluster = Cluster(ClusterConfig(nodes=2))
        app = SyntheticModel(checkpoint_mb_per_rank=10)
        cluster.build(app, CheckpointConfig(), ranks_per_node=1)
        with pytest.raises(ClusterError):
            cluster.build(app, CheckpointConfig(), ranks_per_node=1)

    def test_too_many_nodes_rejected(self):
        cluster = Cluster(ClusterConfig(nodes=2))
        with pytest.raises(ClusterError):
            cluster.build(
                SyntheticModel(checkpoint_mb_per_rank=10),
                CheckpointConfig(),
                n_nodes_used=3,
            )

    def test_rank_names_and_lookup(self):
        cluster = Cluster(ClusterConfig(nodes=2))
        cluster.build(
            SyntheticModel(checkpoint_mb_per_rank=10),
            CheckpointConfig(),
            ranks_per_node=2,
        )
        node = cluster.node_of_rank("r0")
        assert node.node_id == 0
        node3 = cluster.node_of_rank("r3")
        assert node3.node_id == 1
        with pytest.raises(ClusterError):
            cluster.node_of_rank("r99")

    def test_checkpoint_bytes_aggregate(self):
        cluster = Cluster(ClusterConfig(nodes=2))
        app = SyntheticModel(checkpoint_mb_per_rank=10, chunk_mb=5)
        cluster.build(app, CheckpointConfig(), ranks_per_node=2)
        from repro.units import MB

        assert cluster.checkpoint_bytes() == 4 * MB(10)

    def test_node_replace_hardware(self):
        cluster = Cluster(ClusterConfig(nodes=2))
        cluster.build(
            SyntheticModel(checkpoint_mb_per_rank=10),
            CheckpointConfig(),
            ranks_per_node=1,
        )
        node = cluster.nodes[0]
        old_ctx = node.ctx
        node.replace_hardware()
        assert node.ctx is not old_ctx
        assert node.ranks == []
        assert node.incarnation == 1
