"""The parallel cached execution engine (repro.exec)."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro import __version__
from repro.exec import (
    ExecutionReport,
    GridSpec,
    ParallelExecutor,
    ResultCache,
    WorkerPool,
    cache_key,
    derive_cell_seed,
    expand_grid,
    flatten_record,
    resolve_workers,
    run_grid,
)
from repro.exec.executor import _batch_indexes
from repro.tools.sweep import collect_fields, parse_sweeps, write_csv

#: a fast, fully deterministic base cell (no remote tier, tiny sizes)
BASE = [
    "--app", "synthetic", "--nodes", "2", "--ranks-per-node", "2",
    "--iterations", "2", "--local-interval", "10", "--remote-interval", "30",
    "--checkpoint-mb", "40", "--chunk-mb", "10", "--no-remote",
]
THREE_AXES = ["nvm-gbps=1.0,2.0", "mode=none,dcpcp", "ranks-per-node=1,2"]

HOST_CPUS = max(1, os.cpu_count() or 1)


def _square(payload):
    """Module-level so the fork/spawn pool can pickle it."""
    return {"value": payload["x"] ** 2}


def _boom(payload):
    """Module-level failing cell for error-propagation tests."""
    if payload["x"] == 2:
        raise RuntimeError("cell 2 exploded")
    return {"value": payload["x"]}


def _pid(payload):
    """Report which worker process ran the cell."""
    return {"pid": os.getpid(), "x": payload["x"]}


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key({"a": 1}, __version__)
        assert cache.get(key) is None
        cache.put(key, {"out": 2.5}, config={"a": 1})
        assert cache.get(key) == {"out": 2.5}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert len(cache) == 1

    def test_key_is_content_addressed(self):
        k1 = cache_key({"a": 1, "b": 2}, "1.0.0")
        k2 = cache_key({"b": 2, "a": 1}, "1.0.0")  # order-independent
        k3 = cache_key({"a": 1, "b": 3}, "1.0.0")
        k4 = cache_key({"a": 1, "b": 2}, "1.0.1")  # version busts
        assert k1 == k2
        assert k1 != k3
        assert k1 != k4

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key({"a": 1}, __version__)
        cache.put(key, {"out": 1})
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{not json")
        assert cache.get(key) is None


class TestWorkerPool:
    """The persistent pool itself (forced multiprocess via clamp=False)."""

    def test_batched_dispatch_reassembles_submission_order(self):
        with ParallelExecutor(workers=2, clamp=False, private_pool=True) as ex:
            report = ex.run(_square, [{"x": i} for i in range(10)])
        assert [r["value"] for r in report.results] == [i * i for i in range(10)]
        assert report.cells_executed == 10
        assert report.batches > 1  # really went through batched dispatch

    def test_workers_persist_across_runs(self):
        """The tentpole: the second grid reuses the same worker
        processes — no per-grid interpreter forks."""
        with ParallelExecutor(workers=2, clamp=False, private_pool=True) as ex:
            first = ex.run(_pid, [{"x": i} for i in range(8)])
            second = ex.run(_pid, [{"x": i} for i in range(8)])
        pids_first = {r["pid"] for r in first.results}
        pids_second = {r["pid"] for r in second.results}
        parent = os.getpid()
        assert parent not in pids_first  # really ran out-of-process
        assert pids_second <= pids_first  # spawned once, reused

    def test_cell_error_propagates_and_pool_survives(self):
        with ParallelExecutor(workers=2, clamp=False, private_pool=True) as ex:
            with pytest.raises(RuntimeError, match="cell 2 exploded"):
                ex.run(_boom, [{"x": i} for i in range(6)])
            # the pool is still serviceable after a cell failure
            report = ex.run(_square, [{"x": i} for i in range(4)])
            assert [r["value"] for r in report.results] == [0, 1, 4, 9]

    def test_dead_pool_rejects_work(self):
        pool = WorkerPool(1)
        pool.close()
        from repro.exec import WorkerPoolError

        with pytest.raises(WorkerPoolError):
            pool.run_batches(_square, [[(0, {"x": 1})]])

    def test_batch_indexes_cover_exactly_once(self):
        for n, b in [(1, 4), (7, 3), (16, 16), (5, 100)]:
            batches = _batch_indexes(list(range(n)), b)
            flat = [i for batch in batches for i in batch]
            assert flat == list(range(n))
            assert len(batches) <= max(1, min(b, n))


class TestParallelExecutor:
    def test_results_in_submission_order(self):
        ex = ParallelExecutor(workers=4)
        report = ex.run(_square, [{"x": i} for i in range(10)])
        assert [r["value"] for r in report.results] == [i * i for i in range(10)]
        assert report.cells_executed == 10

    def test_serial_equals_parallel(self):
        payloads = [{"x": i} for i in range(8)]
        serial = ParallelExecutor(workers=1).run(_square, payloads)
        with ParallelExecutor(workers=4, clamp=False, private_pool=True) as ex:
            parallel = ex.run(_square, payloads)
        assert serial.results == parallel.results

    def test_cache_short_circuits(self, tmp_path):
        payloads = [{"x": i} for i in range(4)]
        keys = [cache_key(p, __version__) for p in payloads]
        cache = ResultCache(tmp_path)
        first = ParallelExecutor(workers=2, cache=cache).run(_square, payloads, keys=keys)
        assert first.cells_executed == 4 and first.cache_hits == 0
        second = ParallelExecutor(workers=2, cache=cache).run(_square, payloads, keys=keys)
        assert second.cells_executed == 0
        assert second.cache_hits == 4
        assert second.cache_hit_rate == 1.0
        assert second.results == first.results

    def test_resolve_workers_clamps_to_host(self):
        """The host_cpus=1 bugfix: requesting more workers than CPUs
        must not oversubscribe (that is how the original bench lost
        wall-clock at 'workers: 4' on a 1-CPU box)."""
        assert resolve_workers(1) == 1
        assert resolve_workers(HOST_CPUS + 3) == HOST_CPUS
        assert resolve_workers(HOST_CPUS + 3, clamp=False) == HOST_CPUS + 3
        assert resolve_workers("auto") == HOST_CPUS
        assert resolve_workers(None) == HOST_CPUS
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_report_records_requested_and_effective(self):
        ex = ParallelExecutor(workers=HOST_CPUS + 7)
        report = ex.run(_square, [{"x": 1}])
        assert report.workers == HOST_CPUS
        assert report.workers_requested == HOST_CPUS + 7


class TestGrid:
    def test_expand_grid_cross_product(self):
        cells = expand_grid(BASE, parse_sweeps(THREE_AXES))
        assert len(cells) == 8
        assert cells[0].overrides == (
            ("nvm-gbps", "1.0"), ("mode", "none"), ("ranks-per-node", "1"),
        )
        # every cell resolved to a full picklable/JSON-able config
        json.dumps(cells[0].config)

    def test_gridspec_normalizes_both_axis_shapes(self):
        from_specs = GridSpec.of(BASE, THREE_AXES)  # "name=v1,v2" strings
        from_pairs = GridSpec.of(BASE, parse_sweeps(THREE_AXES))
        assert from_specs == from_pairs
        assert from_specs.n_cells == 8
        assert expand_grid(from_specs) == expand_grid(BASE, parse_sweeps(THREE_AXES))

    def test_cell_seeds_are_derived_and_stable(self):
        cells = expand_grid(BASE, parse_sweeps(THREE_AXES))
        again = expand_grid(BASE, parse_sweeps(THREE_AXES))
        assert [c.config["seed"] for c in cells] == [c.config["seed"] for c in again]
        assert len({c.config["seed"] for c in cells}) == len(cells)  # decorrelated

    def test_seed_derivation_is_axis_order_independent(self):
        assert derive_cell_seed(1, [("a", "1"), ("b", "2")]) == derive_cell_seed(
            1, [("b", "2"), ("a", "1")]
        )
        assert derive_cell_seed(1, [("a", "1")]) != derive_cell_seed(2, [("a", "1")])

    def test_swept_seed_axis_wins_over_derivation(self):
        cells = expand_grid(BASE, parse_sweeps(["seed=7,8"]))
        assert [c.config["seed"] for c in cells] == [7, 8]

    def test_flatten_record(self):
        assert flatten_record({"a": {"b": 1, "c": {"d": 2}}, "e": 3}) == {
            "a.b": 1, "a.c.d": 2, "e": 3,
        }


class TestGridDeterminism:
    """The tentpole acceptance tests."""

    def test_parallel_equals_serial_three_axis_grid(self):
        axes = parse_sweeps(THREE_AXES)
        serial = run_grid(BASE, axes, workers=1)
        # clamp=False forces the real multiprocess pool even on 1 CPU
        parallel = run_grid(BASE, axes, workers=4, clamp=False)
        assert serial.records == parallel.records
        # and the CSVs are byte-identical, not merely equal as dicts
        a, b = io.StringIO(), io.StringIO()
        write_csv(serial.records, axes, a)
        write_csv(parallel.records, axes, b)
        assert a.getvalue() == b.getvalue()

    def test_warm_cache_executes_zero_cells(self, tmp_path):
        axes = parse_sweeps(["nvm-gbps=1.0,2.0", "mode=none,dcpcp"])
        cold = run_grid(BASE, axes, workers=2, cache=ResultCache(tmp_path))
        assert cold.execution.cells_executed == 4
        # cache accepts a plain path too (facade convenience)
        warm = run_grid(BASE, axes, workers=2, cache=str(tmp_path))
        assert warm.execution.cells_executed == 0
        assert warm.execution.cache_hits == 4
        assert warm.records == cold.records

    def test_cache_keyed_by_config_executes_only_changed_cells(self, tmp_path):
        axes = parse_sweeps(["nvm-gbps=1.0,2.0"])
        run_grid(BASE, axes, workers=1, cache=ResultCache(tmp_path))
        grown = parse_sweeps(["nvm-gbps=1.0,2.0,4.0"])
        second = run_grid(BASE, grown, workers=1, cache=ResultCache(tmp_path))
        assert second.execution.cache_hits == 2
        assert second.execution.cells_executed == 1  # only the new cell

    def test_parallel_no_slower_than_serial_on_clamped_host(self):
        """Regression pin for the oversubscription bug: with clamping,
        a 'parallel' cold run of an 8-cell grid must not lose
        wall-clock vs serial (the legacy fork pool ran at 0.45x)."""
        axes = parse_sweeps(THREE_AXES)
        serial = run_grid(BASE, axes, workers=1)
        cold = run_grid(BASE, axes, workers=4)  # clamps to HOST_CPUS
        assert cold.records == serial.records
        assert cold.execution.workers == HOST_CPUS
        assert cold.execution.workers_requested == 4
        # generous bound: catches the 2x pathology, tolerates jitter
        assert cold.execution.wall_s <= serial.execution.wall_s * 1.5 + 0.5


class TestRunGridFacade:
    def test_gridspec_run_equals_legacy_form(self):
        spec = GridSpec.of(BASE, ["mode=none,dcpcp"])
        a = run_grid(spec)
        b = run_grid(BASE, ["mode=none,dcpcp"])
        assert a.records == b.records
        assert [c.key for c in a.cells] == [c.key for c in b.cells]

    def test_grid_result_write_csv(self):
        result = run_grid(BASE, ["mode=none"])
        out = io.StringIO()
        result.write_csv(out)
        lines = out.getvalue().splitlines()
        assert lines[0].startswith("sweep.mode")
        assert len(lines) == 2

    def test_trace_kwarg_writes_versioned_jsonl(self, tmp_path):
        trace = tmp_path / "grid.jsonl"
        result = run_grid(BASE, ["mode=none,dcpcp"], trace=str(trace))
        assert result.trace_path == str(trace)
        lines = trace.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "trace.header"
        assert header["meta"]["source"] == "repro.exec.run_grid"
        assert len(header["meta"]["cells"]) == 2
        events = [json.loads(line) for line in lines[1:]]
        assert events  # executed cells really shipped their events
        assert all("kind" in e for e in events)

    def test_trace_capture_works_across_the_pool(self, tmp_path):
        """Worker-side capture: the old fork pool silently dropped
        child trace events; the persistent pool ships them back."""
        serial = tmp_path / "serial.jsonl"
        pooled = tmp_path / "pooled.jsonl"
        run_grid(BASE, ["mode=none,dcpcp"], trace=str(serial))
        run_grid(BASE, ["mode=none,dcpcp"], trace=str(pooled),
                 workers=2, clamp=False)
        assert serial.read_text() == pooled.read_text()


AXIS_POOL = {
    "nvm-gbps": ["0.5", "1.0", "2.0"],
    "mode": ["none", "cpc", "dcpc", "dcpcp"],
    "ranks-per-node": ["1", "2"],
    "local-interval": ["8", "12"],
}


def _axes_strategy():
    """Random 1-2 axis grids (<= 4 cells) over the experiment surface."""
    from hypothesis import strategies as st

    def axis(name):
        values = AXIS_POOL[name]
        return st.lists(
            st.sampled_from(values), min_size=1, max_size=2, unique=True
        ).map(lambda vs: (name, vs))

    return (
        st.lists(st.sampled_from(sorted(AXIS_POOL)), min_size=1, max_size=2,
                 unique=True)
        .flatmap(lambda names: st.tuples(*(axis(n) for n in names)))
        .map(list)
    )


class TestGridProperty:
    """Property test: serial, persistent-pool parallel, and
    batched-dispatch-shaped runs agree byte-for-byte on random grids."""

    @pytest.mark.filterwarnings("ignore::UserWarning")
    def test_three_execution_shapes_agree(self):
        from hypothesis import HealthCheck, given, settings

        @settings(max_examples=4, deadline=None,
                  suppress_health_check=list(HealthCheck))
        @given(axes=_axes_strategy())
        def check(axes):
            self._assert_shapes_agree(axes)

        check()

    def _assert_shapes_agree(self, axes):
        serial = run_grid(BASE, axes, workers=1)
        pooled = run_grid(BASE, axes, workers=2, clamp=False)
        # a different batching shape must not leak into the output
        wide = run_grid(
            BASE, axes,
            executor=ParallelExecutor(workers=2, clamp=False,
                                      dispatch_batches=1),
        )
        assert serial.records == pooled.records == wide.records
        # identical content-addressed cache keys across all three
        keys = [[c.key for c in r.cells] for r in (serial, pooled, wide)]
        assert keys[0] == keys[1] == keys[2]
        # and byte-identical CSVs
        csvs = []
        for r in (serial, pooled, wide):
            out = io.StringIO()
            write_csv(r.records, axes, out)
            csvs.append(out.getvalue())
        assert csvs[0] == csvs[1] == csvs[2]


class TestDynamicCsvColumns:
    def test_union_of_keys_no_silent_drops(self):
        axes = [("x", ["1", "2"])]
        records = [
            {"sweep.x": "1", "total_time_s": 1.0, "novel.metric": 42},
            {"sweep.x": "2", "total_time_s": 2.0, "other.metric": 7},
        ]
        fields = collect_fields(records, axes)
        assert fields[0] == "sweep.x"
        assert "novel.metric" in fields and "other.metric" in fields
        out = io.StringIO()
        write_csv(records, axes, out)
        header = out.getvalue().splitlines()[0]
        assert "novel.metric" in header

    def test_preferred_ordering_respected(self):
        axes = [("x", ["1"])]
        records = [{"sweep.x": "1", "overhead_fraction": 0.1, "app": "a",
                    "zz.extra": 1}]
        fields = collect_fields(records, axes)
        assert fields.index("app") < fields.index("overhead_fraction") < fields.index("zz.extra")

    def test_sweep_records_carry_new_metrics_end_to_end(self):
        axes = parse_sweeps(["mode=none"])
        records = run_grid(BASE, axes, workers=1).records
        fields = collect_fields(records, axes)
        # failures.iterations_recomputed is absent from the legacy
        # hardcoded list; the dynamic union must surface it
        assert "failures.iterations_recomputed" in fields


@pytest.mark.bench
class TestEngineThroughput:
    """Slow-ish engine checks; kept under the bench marker."""

    def test_bench_smoke(self):
        from repro.tools.bench import run_smoke

        assert run_smoke(workers=2) == 0

    def test_execution_report_rates(self):
        report = ExecutionReport(cells_total=10, cache_hits=5, wall_s=2.0)
        assert report.cache_hit_rate == 0.5
        assert report.cells_per_sec == 5.0
