"""The parallel cached execution engine (repro.exec)."""

from __future__ import annotations

import io
import json

import pytest

from repro import __version__
from repro.exec import (
    ExecutionReport,
    ParallelExecutor,
    ResultCache,
    cache_key,
    derive_cell_seed,
    expand_grid,
    flatten_record,
    resolve_workers,
    run_grid,
)
from repro.tools.sweep import collect_fields, parse_sweeps, write_csv

#: a fast, fully deterministic base cell (no remote tier, tiny sizes)
BASE = [
    "--app", "synthetic", "--nodes", "2", "--ranks-per-node", "2",
    "--iterations", "2", "--local-interval", "10", "--remote-interval", "30",
    "--checkpoint-mb", "40", "--chunk-mb", "10", "--no-remote",
]
THREE_AXES = ["nvm-gbps=1.0,2.0", "mode=none,dcpcp", "ranks-per-node=1,2"]


def _square(payload):
    """Module-level so the fork/spawn pool can pickle it."""
    return {"value": payload["x"] ** 2}


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key({"a": 1}, __version__)
        assert cache.get(key) is None
        cache.put(key, {"out": 2.5}, config={"a": 1})
        assert cache.get(key) == {"out": 2.5}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert len(cache) == 1

    def test_key_is_content_addressed(self):
        k1 = cache_key({"a": 1, "b": 2}, "1.0.0")
        k2 = cache_key({"b": 2, "a": 1}, "1.0.0")  # order-independent
        k3 = cache_key({"a": 1, "b": 3}, "1.0.0")
        k4 = cache_key({"a": 1, "b": 2}, "1.0.1")  # version busts
        assert k1 == k2
        assert k1 != k3
        assert k1 != k4

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key({"a": 1}, __version__)
        cache.put(key, {"out": 1})
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{not json")
        assert cache.get(key) is None


class TestParallelExecutor:
    def test_results_in_submission_order(self):
        ex = ParallelExecutor(workers=4)
        report = ex.run(_square, [{"x": i} for i in range(10)])
        assert [r["value"] for r in report.results] == [i * i for i in range(10)]
        assert report.cells_executed == 10

    def test_serial_equals_parallel(self):
        payloads = [{"x": i} for i in range(8)]
        serial = ParallelExecutor(workers=1).run(_square, payloads)
        parallel = ParallelExecutor(workers=4).run(_square, payloads)
        assert serial.results == parallel.results

    def test_cache_short_circuits(self, tmp_path):
        payloads = [{"x": i} for i in range(4)]
        keys = [cache_key(p, __version__) for p in payloads]
        cache = ResultCache(tmp_path)
        first = ParallelExecutor(workers=2, cache=cache).run(_square, payloads, keys=keys)
        assert first.cells_executed == 4 and first.cache_hits == 0
        second = ParallelExecutor(workers=2, cache=cache).run(_square, payloads, keys=keys)
        assert second.cells_executed == 0
        assert second.cache_hits == 4
        assert second.cache_hit_rate == 1.0
        assert second.results == first.results

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("auto") >= 1
        assert resolve_workers(None) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestGrid:
    def test_expand_grid_cross_product(self):
        cells = expand_grid(BASE, parse_sweeps(THREE_AXES))
        assert len(cells) == 8
        assert cells[0].overrides == (
            ("nvm-gbps", "1.0"), ("mode", "none"), ("ranks-per-node", "1"),
        )
        # every cell resolved to a full picklable/JSON-able config
        json.dumps(cells[0].config)

    def test_cell_seeds_are_derived_and_stable(self):
        cells = expand_grid(BASE, parse_sweeps(THREE_AXES))
        again = expand_grid(BASE, parse_sweeps(THREE_AXES))
        assert [c.config["seed"] for c in cells] == [c.config["seed"] for c in again]
        assert len({c.config["seed"] for c in cells}) == len(cells)  # decorrelated

    def test_seed_derivation_is_axis_order_independent(self):
        assert derive_cell_seed(1, [("a", "1"), ("b", "2")]) == derive_cell_seed(
            1, [("b", "2"), ("a", "1")]
        )
        assert derive_cell_seed(1, [("a", "1")]) != derive_cell_seed(2, [("a", "1")])

    def test_swept_seed_axis_wins_over_derivation(self):
        cells = expand_grid(BASE, parse_sweeps(["seed=7,8"]))
        assert [c.config["seed"] for c in cells] == [7, 8]

    def test_flatten_record(self):
        assert flatten_record({"a": {"b": 1, "c": {"d": 2}}, "e": 3}) == {
            "a.b": 1, "a.c.d": 2, "e": 3,
        }


class TestGridDeterminism:
    """The tentpole acceptance tests."""

    def test_parallel_equals_serial_three_axis_grid(self):
        axes = parse_sweeps(THREE_AXES)
        serial = run_grid(BASE, axes, workers=1)
        parallel = run_grid(BASE, axes, workers=4)
        assert serial.records == parallel.records
        # and the CSVs are byte-identical, not merely equal as dicts
        a, b = io.StringIO(), io.StringIO()
        write_csv(serial.records, axes, a)
        write_csv(parallel.records, axes, b)
        assert a.getvalue() == b.getvalue()

    def test_warm_cache_executes_zero_cells(self, tmp_path):
        axes = parse_sweeps(["nvm-gbps=1.0,2.0", "mode=none,dcpcp"])
        cold = run_grid(BASE, axes, workers=2, cache=ResultCache(tmp_path))
        assert cold.execution.cells_executed == 4
        warm = run_grid(BASE, axes, workers=2, cache=ResultCache(tmp_path))
        assert warm.execution.cells_executed == 0
        assert warm.execution.cache_hits == 4
        assert warm.records == cold.records

    def test_cache_keyed_by_config_executes_only_changed_cells(self, tmp_path):
        axes = parse_sweeps(["nvm-gbps=1.0,2.0"])
        run_grid(BASE, axes, workers=1, cache=ResultCache(tmp_path))
        grown = parse_sweeps(["nvm-gbps=1.0,2.0,4.0"])
        second = run_grid(BASE, grown, workers=1, cache=ResultCache(tmp_path))
        assert second.execution.cache_hits == 2
        assert second.execution.cells_executed == 1  # only the new cell


class TestDynamicCsvColumns:
    def test_union_of_keys_no_silent_drops(self):
        axes = [("x", ["1", "2"])]
        records = [
            {"sweep.x": "1", "total_time_s": 1.0, "novel.metric": 42},
            {"sweep.x": "2", "total_time_s": 2.0, "other.metric": 7},
        ]
        fields = collect_fields(records, axes)
        assert fields[0] == "sweep.x"
        assert "novel.metric" in fields and "other.metric" in fields
        out = io.StringIO()
        write_csv(records, axes, out)
        header = out.getvalue().splitlines()[0]
        assert "novel.metric" in header

    def test_preferred_ordering_respected(self):
        axes = [("x", ["1"])]
        records = [{"sweep.x": "1", "overhead_fraction": 0.1, "app": "a",
                    "zz.extra": 1}]
        fields = collect_fields(records, axes)
        assert fields.index("app") < fields.index("overhead_fraction") < fields.index("zz.extra")

    def test_sweep_records_carry_new_metrics_end_to_end(self):
        axes = parse_sweeps(["mode=none"])
        records = run_grid(BASE, axes, workers=1).records
        fields = collect_fields(records, axes)
        # failures.iterations_recomputed is absent from the legacy
        # hardcoded list; the dynamic union must surface it
        assert "failures.iterations_recomputed" in fields


@pytest.mark.bench
class TestEngineThroughput:
    """Slow-ish engine checks; kept under the bench marker."""

    def test_bench_smoke(self):
        from repro.tools.bench import run_smoke

        assert run_smoke(workers=2) == 0

    def test_execution_report_rates(self):
        report = ExecutionReport(cells_total=10, cache_hits=5, wall_s=2.0)
        assert report.cache_hit_rate == 0.5
        assert report.cells_per_sec == 5.0
