"""The PFS archive tier: change detection, traffic paths, periodic
rounds on a live cluster."""

import pytest

from repro.apps import SyntheticModel
from repro.baselines import PfsModel, precopy_config
from repro.cluster import Cluster, ClusterRunner
from repro.config import ClusterConfig
from repro.core import ArchiveTier
from repro.units import GB_per_sec, MB


def build_world(remote_interval=30.0):
    cluster = Cluster(ClusterConfig(nodes=2), nvm_write_bandwidth=GB_per_sec(2.0), seed=3)
    app = SyntheticModel(checkpoint_mb_per_rank=40, chunk_mb=20,
                         iteration_compute_time=10.0)
    cluster.build(app, precopy_config(10.0, remote_interval), ranks_per_node=2)
    pfs = PfsModel(cluster.engine, aggregate_bandwidth=GB_per_sec(2.0))
    return cluster, pfs


class TestArchiveRounds:
    def test_archives_buddy_committed_data(self):
        cluster, pfs = build_world()
        tier = ArchiveTier(cluster.engine, cluster.helpers(), pfs, interval=35.0)
        runner = ClusterRunner(cluster, archive=tier)
        res = runner.run(5)
        assert tier.total_bytes > 0
        # everything buddy-committed by the first archive got covered
        assert pfs.total_bytes == tier.total_bytes
        assert any(s.ranks_covered == 4 for s in tier.history)

    def test_unchanged_versions_skipped(self):
        """A second archive round right after the first ships nothing."""
        cluster, pfs = build_world()
        runner = ClusterRunner(cluster)
        res = runner.run(4)  # rounds at t=30: buddy holds data
        tier = ArchiveTier(cluster.engine, cluster.helpers(), pfs, interval=1e9)
        p1 = cluster.engine.process(tier.archive_round())
        cluster.engine.run()
        first = p1.value.bytes_archived
        assert first > 0
        p2 = cluster.engine.process(tier.archive_round())
        cluster.engine.run()
        assert p2.value.bytes_archived == 0

    def test_rearchives_after_new_commits(self):
        cluster, pfs = build_world()
        runner = ClusterRunner(cluster)
        runner.run(4)
        tier = ArchiveTier(cluster.engine, cluster.helpers(), pfs, interval=1e9)
        p1 = cluster.engine.process(tier.archive_round())
        cluster.engine.run()
        # simulate the buddies committing fresh versions
        for helper in cluster.helpers():
            for target in helper.targets.values():
                for name in list(target.committed):
                    if target.committed[name] >= 0:
                        target.committed[name] = 1 - target.committed[name]
        p2 = cluster.engine.process(tier.archive_round())
        cluster.engine.run()
        assert p2.value.bytes_archived == p1.value.bytes_archived

    def test_archived_versions_query(self):
        cluster, pfs = build_world()
        runner = ClusterRunner(cluster)
        runner.run(4)
        tier = ArchiveTier(cluster.engine, cluster.helpers(), pfs, interval=1e9)
        proc = cluster.engine.process(tier.archive_round())
        cluster.engine.run()
        versions = tier.archived_versions("r0")
        assert versions and all(v >= 0 for v in versions.values())
        assert tier.archived_versions("ghost") == {}

    def test_interval_validation(self):
        cluster, pfs = build_world()
        with pytest.raises(ValueError):
            ArchiveTier(cluster.engine, cluster.helpers(), pfs, interval=0.0)

    def test_archive_traffic_off_the_compute_path(self):
        """Archive reads load the buddies' NVM buses, not the fabric
        egress of compute traffic; the PFS pipe carries the volume."""
        cluster, pfs = build_world()
        tier = ArchiveTier(cluster.engine, cluster.helpers(), pfs, interval=35.0)
        runner = ClusterRunner(cluster, archive=tier)
        runner.run(5)
        assert pfs.total_bytes > 0
        # no archive bytes on the inter-node fabric
        assert cluster.fabric.total_bytes(":archive") == 0.0
