"""Destination backend conformance suite.

Every checkpoint backend — the NVM shadow arena, the PFS and ramdisk
baselines, the remote buddy target — implements the
:class:`~repro.core.destination.Destination` protocol and is driven by
the same :class:`~repro.core.engine.CheckpointEngine` walk.  This suite
runs each backend through the shared contract:

* protocol surface (name, two_version, capacity);
* a full coordinated checkpoint through the engine completes with
  consistent stats;
* committed payloads round-trip through ``read`` (two-version
  backends) or fail loudly (backends that do not model restart);
* write/commit atomicity under the crash-point harness: a crash before
  the commit flip leaves the *old* committed version readable, a crash
  after the flip the *new* one — never a torn state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc import NVAllocator
from repro.baselines.pfs import PfsModel
from repro.baselines.ramdisk import RamdiskPathModel
from repro.config import PrecopyPolicy
from repro.core import make_standalone_context
from repro.core.destination import (
    Destination,
    NVMArenaDestination,
    PfsDestination,
    RamdiskDestination,
    RemoteBuddyDestination,
)
from repro.core.engine import CheckpointEngine
from repro.core.remote import RemoteTarget
from repro.errors import CheckpointError, CrashInjected
from repro.faults.crashpoints import FaultInjector, install

CHUNK_BYTES = 4096


class _Rig:
    """One backend under test: a standalone context, a real-payload
    allocator, and the destination wired to them."""

    def __init__(self, name: str):
        self.ctx = make_standalone_context(name=f"dst-{name}")
        self.alloc = NVAllocator(
            "p0",
            self.ctx.nvmm,
            self.ctx.dram,
            phantom=False,
            clock=lambda: self.ctx.engine.now,
        )
        self.pfs = None
        self.buddy_ctx = None
        if name == "nvm":
            self.dest: Destination = NVMArenaDestination(self.ctx, self.alloc)
        elif name == "pfs":
            self.pfs = PfsModel(self.ctx.engine)
            self.dest = PfsDestination(self.pfs, "r0", self.ctx, self.alloc)
        elif name == "ramdisk":
            self.dest = RamdiskDestination(self.ctx, RamdiskPathModel())
        elif name == "buddy":
            self.buddy_ctx = make_standalone_context(
                engine=self.ctx.engine, name=f"dst-{name}-buddy"
            )
            target = RemoteTarget("p0", self.buddy_ctx, two_versions=True)
            self.dest = RemoteBuddyDestination(
                target,
                send_fn=lambda chunk, extents=None, wire=None: self.ctx.engine.timeout(1e-3),
            )
        else:  # pragma: no cover - test bug
            raise ValueError(name)

    def engine_for(
        self, mode: str = "none", granularity: str = "chunk", codec: str = "raw"
    ) -> CheckpointEngine:
        return CheckpointEngine(
            self.ctx,
            self.alloc,
            PrecopyPolicy(mode=mode, copy_granularity=granularity, codec=codec),
            destination=self.dest,
        )


BACKENDS = ["nvm", "pfs", "ramdisk", "buddy"]
TWO_VERSION = ["nvm", "buddy"]


@pytest.fixture(params=BACKENDS)
def rig(request):
    return _Rig(request.param)


# ---------------------------------------------------------------------------
# Protocol surface.
# ---------------------------------------------------------------------------


def test_protocol_surface(rig):
    assert rig.dest.name
    assert isinstance(rig.dest.two_version, bool)
    cap = rig.dest.capacity()
    assert isinstance(cap, float) and (cap >= 0 or cap == float("inf"))
    assert rig.dest.flush() >= 0.0


def test_base_protocol_is_abstract():
    d = Destination()
    with pytest.raises(NotImplementedError):
        d.write(None)
    with pytest.raises(NotImplementedError):
        d.read("x")
    assert d.commit([]) == 0.0
    assert d.capacity() == float("inf")


# ---------------------------------------------------------------------------
# One engine drives every backend.
# ---------------------------------------------------------------------------


def test_engine_checkpoint_completes(rig):
    a = rig.alloc.nvalloc("a", CHUNK_BYTES)
    b = rig.alloc.nvalloc("b", 2 * CHUNK_BYTES)
    ck = rig.engine_for()
    stats = ck.checkpoint()
    assert stats.chunks_copied == 2
    assert stats.bytes_copied == a.nbytes + b.nbytes
    assert stats.end >= stats.start
    assert ck.checkpoints_done == 1 and len(ck.history) == 1


def test_two_version_commit_roundtrips_payload(rig):
    if rig.dest.name not in TWO_VERSION:
        pytest.skip("single-version backend")
    a = rig.alloc.nvalloc("a", CHUNK_BYTES)
    data = np.arange(CHUNK_BYTES, dtype=np.uint8)
    a.write(0, data)
    rig.engine_for().checkpoint()
    got = np.frombuffer(rig.dest.read("a"), dtype=np.uint8)
    assert np.array_equal(got, data)


def test_single_version_read_semantics(rig):
    if rig.dest.name in TWO_VERSION:
        pytest.skip("two-version backend")
    rig.alloc.nvalloc("a", CHUNK_BYTES)
    rig.engine_for().checkpoint()
    if rig.dest.name == "pfs":
        with pytest.raises(CheckpointError):
            rig.dest.read("a")
    else:  # ramdisk remembers sizes, not payloads
        assert rig.dest.read("a").nbytes == CHUNK_BYTES
        with pytest.raises(CheckpointError):
            rig.dest.read("never-written")


def test_pfs_accounting_keys_off_rank_tag(rig):
    if rig.dest.name != "pfs":
        pytest.skip("pfs-only contract")
    rig.alloc.nvalloc("a", CHUNK_BYTES)
    rig.engine_for().checkpoint()
    assert rig.pfs.total_bytes == CHUNK_BYTES
    assert "r0:pfsckpt" in rig.pfs.resource.bytes_by_tag


def test_checkpoint_advances_simulated_time(rig):
    rig.alloc.nvalloc("a", 64 * CHUNK_BYTES)
    t0 = rig.ctx.engine.now
    rig.engine_for().checkpoint()
    assert rig.ctx.engine.now > t0


# ---------------------------------------------------------------------------
# Write/commit atomicity under the crash-point harness.
# ---------------------------------------------------------------------------


class _CrashAt(FaultInjector):
    """Abort the checkpoint at one named crash point, once."""

    def __init__(self, point: str):
        self.point = point
        self.fired = False

    def on_fire(self, name, info):
        if name == self.point and not self.fired:
            self.fired = True
            raise CrashInjected(f"scripted crash at {name}")


def _crashed_second_checkpoint(rig, point: str, old, new):
    """Commit *old*, then crash a second checkpoint of *new* at *point*."""
    a = rig.alloc.nvalloc("a", CHUNK_BYTES)
    a.write(0, old)
    rig.engine_for().checkpoint()
    a.write(0, new)
    ck = rig.engine_for()
    with install(_CrashAt(point)):
        proc = rig.ctx.engine.process(ck.checkpoint(blocking=False), name="crash-ckpt")
        rig.ctx.engine.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.exception, CrashInjected)


# ---------------------------------------------------------------------------
# Range writes (write_at) and page-granular incremental copy.
# ---------------------------------------------------------------------------

PAGE = 4096
INC_BYTES = 16 * PAGE  # multi-page, so partial-chunk dirtiness exists


def test_base_write_at_falls_back_to_whole_chunk_write():
    class _Recorder(Destination):
        def __init__(self):
            self.calls = []

        def write(self, chunk, *, tag=""):
            self.calls.append((chunk, tag))
            return "evt"

    d = _Recorder()
    assert d.write_at("c", [(0, 10), (64, 32)], tag="t") == "evt"
    assert d.calls == [("c", "t")]


def _three_incremental_checkpoints(rig):
    """Full, full, then genuinely partial: the stale maps of both
    version slots start all-stale, so savings begin at the third
    checkpoint.  Returns ``(chunk, engine, v2, v3)`` where *v2* is the
    content committed by the second checkpoint and *v3* the content the
    third is committing."""
    a = rig.alloc.nvalloc("a", INC_BYTES)
    v1 = np.full(INC_BYTES, 0x11, dtype=np.uint8)
    a.write(0, v1)
    ck = rig.engine_for(granularity="page")
    ck.checkpoint()
    a.write(2 * PAGE, np.full(2 * PAGE, 0x22, dtype=np.uint8))
    v2 = v1.copy()
    v2[2 * PAGE : 4 * PAGE] = 0x22
    ck.checkpoint()
    a.write(2 * PAGE, np.full(2 * PAGE, 0x33, dtype=np.uint8))
    v3 = v2.copy()
    v3[2 * PAGE : 4 * PAGE] = 0x33
    # the pending extents for the third copy cover only the re-dirtied
    # pages, not the whole chunk
    pending = rig.dest.pending_extents(a)
    assert 0 < sum(n for _, n in pending) < INC_BYTES
    return a, ck, v2, v3


def test_incremental_third_checkpoint_moves_only_extents(rig):
    _, ck, _, v3 = _three_incremental_checkpoints(rig)
    stats = ck.checkpoint()
    assert stats.chunks_copied == 1
    assert 0 < stats.bytes_copied < INC_BYTES
    if rig.dest.name in TWO_VERSION:
        got = np.frombuffer(rig.dest.read("a"), dtype=np.uint8)
        assert np.array_equal(got, v3), (
            "partial copy committed content differing from the source"
        )


INCREMENTAL_CRASH_POINTS = {
    "nvm": [
        "chunk.stage.mid",
        "local.commit.before_data_flush",
        "local.commit.before_meta_flush",
        "local.commit.done",
    ],
    "buddy": [
        "local.commit.before_data_flush",
        "local.commit.before_meta_flush",
        "local.commit.done",
    ],
}


@pytest.mark.parametrize(
    "backend,point",
    [(b, p) for b in TWO_VERSION for p in INCREMENTAL_CRASH_POINTS[b]],
)
def test_incremental_crash_is_never_torn(backend, point):
    """Crashing a *partial* (extent-granular) checkpoint at any
    injected crash point must leave either the previous committed
    content or the new one readable — never a mix."""
    rig = _Rig(backend)
    _, ck, v2, v3 = _three_incremental_checkpoints(rig)
    with install(_CrashAt(point)):
        proc = rig.ctx.engine.process(ck.checkpoint(blocking=False), name="crash-ckpt")
        rig.ctx.engine.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.exception, CrashInjected)
    got = np.frombuffer(rig.dest.read("a"), dtype=np.uint8)
    if point in ("chunk.stage.mid", "local.commit.before_data_flush"):
        assert np.array_equal(got, v2), (
            "crash before the commit flip exposed partially staged data"
        )
    else:
        assert np.array_equal(got, v2) or np.array_equal(got, v3), (
            "committed payload is neither the old nor the new version (torn)"
        )


@pytest.mark.parametrize("backend", TWO_VERSION)
def test_crash_before_flip_preserves_old_version(backend):
    rig = _Rig(backend)
    old = np.full(CHUNK_BYTES, 0xAA, dtype=np.uint8)
    new = np.full(CHUNK_BYTES, 0x55, dtype=np.uint8)
    _crashed_second_checkpoint(rig, "local.commit.before_data_flush", old, new)
    got = np.frombuffer(rig.dest.read("a"), dtype=np.uint8)
    assert np.array_equal(got, old), "crash before commit flip exposed new data"


@pytest.mark.parametrize("backend", TWO_VERSION)
@pytest.mark.parametrize(
    "point", ["local.commit.before_meta_flush", "local.commit.done"]
)
def test_crash_around_commit_is_never_torn(backend, point):
    rig = _Rig(backend)
    old = np.full(CHUNK_BYTES, 0xAA, dtype=np.uint8)
    new = np.full(CHUNK_BYTES, 0x55, dtype=np.uint8)
    _crashed_second_checkpoint(rig, point, old, new)
    got = np.frombuffer(rig.dest.read("a"), dtype=np.uint8)
    assert np.array_equal(got, old) or np.array_equal(got, new), (
        "committed payload is neither the old nor the new version (torn write)"
    )


# ---------------------------------------------------------------------------
# write_at extent rejection: one shared contract across every backend.
# ---------------------------------------------------------------------------

BAD_EXTENTS = [
    pytest.param([(0, CHUNK_BYTES + 1)], id="past-end"),
    pytest.param([(CHUNK_BYTES, 1)], id="starts-at-end"),
    pytest.param([(-8, 8)], id="negative-offset"),
    pytest.param([(0, -1)], id="negative-length"),
    pytest.param([(0, 128), (64, 128)], id="overlapping"),
    pytest.param([(256, 64), (0, 64)], id="unsorted"),
]


@pytest.mark.parametrize("extents", BAD_EXTENTS)
def test_write_at_rejects_malformed_extents(rig, extents):
    """Out-of-range, overlapping and unsorted extents raise the same
    CheckpointError on every backend — callers can switch destinations
    without re-learning edge behaviour."""
    chunk = rig.alloc.nvalloc("a", CHUNK_BYTES)
    with pytest.raises(CheckpointError):
        rig.dest.write_at(chunk, extents)


def test_write_at_accepts_legal_extents(rig):
    chunk = rig.alloc.nvalloc("a", CHUNK_BYTES)
    # adjacent-but-not-overlapping runs and a zero-length run are legal
    evt = rig.dest.write_at(chunk, [(0, 64), (64, 0), (128, 64)])
    assert evt is not None
    # the whole chunk as one extent is always legal
    assert rig.dest.write_at(chunk, [(0, CHUNK_BYTES)]) is not None


# ---------------------------------------------------------------------------
# The payload-codec path rides the same contract on every backend.
# ---------------------------------------------------------------------------


def test_ensure_block_store_is_idempotent(rig):
    s1 = rig.dest.ensure_block_store(4096)
    s2 = rig.dest.ensure_block_store(4096)
    assert s1 is s2 is rig.dest.block_store
    # a different block size replaces the index (never silently mixes
    # digests computed at two granularities)
    s3 = rig.dest.ensure_block_store(8192)
    assert s3 is not s1 and s3.block == 8192


def test_codec_slots_contract(rig):
    chunk = rig.alloc.nvalloc("a", CHUNK_BYTES)
    write_slot, base_slot = rig.dest.codec_slots(chunk)
    if rig.dest.two_version:
        # double-buffered: digests stage into the in-progress slot and
        # delta against the committed one
        assert write_slot != base_slot
    else:
        # flat baselines overwrite slot 0 and delta against it
        assert (write_slot, base_slot) == (0, 0)


def test_codec_checkpoint_completes_on_every_backend(rig):
    """Two auto-codec checkpoints (the second partially re-dirtied)
    complete through the shared engine walk on all four backends; the
    second ships fewer wire bytes than its dirty evidence, and
    two-version backends still round-trip the full content."""
    a = rig.alloc.nvalloc("a", INC_BYTES)
    v1 = np.full(INC_BYTES, 0x11, dtype=np.uint8)
    a.write(0, v1)
    ck = rig.engine_for(granularity="page", codec="auto")
    s1 = ck.checkpoint()
    assert s1.chunks_copied == 1
    assert rig.dest.block_store is not None
    assert rig.dest.block_store.commits == 1
    a.write(2 * PAGE, np.full(PAGE, 0x22, dtype=np.uint8))
    v2 = v1.copy()
    v2[2 * PAGE : 3 * PAGE] = 0x22
    s2 = ck.checkpoint()
    assert s2.chunks_copied == 1
    assert rig.dest.block_store.commits == 2
    assert 0 < s2.bytes_copied <= INC_BYTES
    if rig.dest.name in TWO_VERSION:
        got = np.frombuffer(rig.dest.read("a"), dtype=np.uint8)
        assert np.array_equal(got, v2), (
            "codec-planned copy committed content differing from the source"
        )


def test_codec_store_commit_crash_is_recoverable():
    """Crash inside the block-store commit of a second codec
    checkpoint: the committed payload is never torn, and rebuilding the
    refcount index from the slot maps restores agreement."""
    rig = _Rig("nvm")
    a = rig.alloc.nvalloc("a", INC_BYTES)
    old = np.full(INC_BYTES, 0xAA, dtype=np.uint8)
    a.write(0, old)
    ck = rig.engine_for(granularity="page", codec="auto")
    ck.checkpoint()
    new = old.copy()
    new[:PAGE] = 0x55
    a.write(0, new[:PAGE])
    with install(_CrashAt("codec.store.commit.mid")):
        proc = rig.ctx.engine.process(ck.checkpoint(blocking=False), name="crash-ckpt")
        rig.ctx.engine.run()
    assert proc.triggered and not proc.ok
    got = np.frombuffer(rig.dest.read("a"), dtype=np.uint8)
    assert np.array_equal(got, old) or np.array_equal(got, new), (
        "committed payload is neither the old nor the new version (torn)"
    )
    store = rig.dest.block_store
    store.rebuild()  # the restart path's recovery step
    live = np.concatenate([v[v != 0] for v in store._slots.values()])
    assert store.total_refs == len(live)
    assert (store._counts > 0).all()
    # and the next round starts clean: a fresh checkpoint commits
    s3 = rig.engine_for(granularity="page", codec="auto").checkpoint()
    assert s3.chunks_copied >= 0
    got = np.frombuffer(rig.dest.read("a"), dtype=np.uint8)
    assert np.array_equal(got, new)
