"""Restart/recovery: local reload, checksum fallback to the buddy,
hard-failure rebuild from remote only."""

import numpy as np
import pytest

from repro.alloc import NVAllocator
from repro.config import CheckpointConfig, PrecopyPolicy
from repro.core import (
    LocalCheckpointer,
    RemoteHelper,
    RemoteTarget,
    RestartManager,
    make_standalone_context,
)
from repro.errors import NoCheckpointAvailable
from repro.net import Fabric
from repro.sim import Engine
from repro.units import MB


def make_world(phantom=False):
    engine = Engine()
    src = make_standalone_context(name="n0", engine=engine)
    dst = make_standalone_context(name="n1", engine=engine)
    fabric = Fabric(engine, 2)
    alloc = NVAllocator("r0", src.nvmm, src.dram, phantom=phantom, clock=lambda: engine.now)
    ck = LocalCheckpointer(src, alloc, PrecopyPolicy(mode="none"))
    # remote_precopy off so a directly-invoked round moves everything
    helper = RemoteHelper(
        0, src, fabric, 1, dst, [alloc], CheckpointConfig(remote_precopy=False)
    )
    return engine, src, dst, fabric, alloc, ck, helper


def checkpoint_and_replicate(engine, alloc, ck, helper):
    """One local checkpoint + one remote round, synchronously."""
    def proc():
        yield from ck.checkpoint(blocking=False)
        yield from helper.remote_checkpoint()

    p = engine.process(proc())
    engine.run()
    assert p.ok


class TestLocalRestart:
    def test_restart_restores_data_and_times_it(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        data = np.arange(1024, dtype=np.float64)
        alloc.nvalloc("a", 8192).write(0, data)
        checkpoint_and_replicate(engine, alloc, ck, helper)
        src.nvmm.store.crash()
        src.nvmm.crash_process("r0")
        mgr = RestartManager(src)
        report = mgr.restart_process_sync("r0")
        assert report.chunks_local == 1
        assert report.bytes_local == 8192
        assert report.duration > 0
        assert np.array_equal(report.allocator.chunk("a").view(np.float64), data)

    def test_restart_report_attaches_allocator(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        alloc.nvalloc("a", 4096)
        checkpoint_and_replicate(engine, alloc, ck, helper)
        src.nvmm.crash_process("r0")
        report = RestartManager(src).restart_process_sync("r0")
        assert report.allocator is not None
        assert report.allocator.has_chunk("a")

    def test_corrupted_chunk_fetched_from_buddy(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        data = np.full(512, 2.5)
        alloc.nvalloc("a", 4096).write(0, data)
        checkpoint_and_replicate(engine, alloc, ck, helper)
        # corrupt the local committed copy (both versions to be sure)
        src.nvmm.store.write("r0/a#v0", 0, np.full(16, 0xAB, dtype=np.uint8))
        src.nvmm.store.flush()
        src.nvmm.crash_process("r0")
        mgr = RestartManager(src, fabric=fabric, node_id=0)
        report = mgr.restart_process_sync(
            "r0", remote_target=helper.targets["r0"], remote_node=1
        )
        assert report.corrupted_chunks == ["a"]
        assert report.chunks_remote == 1
        assert np.array_equal(
            report.allocator.chunk("a").view(np.float64)[:512], data
        )

    def test_remote_fetched_chunk_is_dirty_local(self):
        """Recovered-from-buddy data must be re-persisted locally."""
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        alloc.nvalloc("a", 4096).write(0, np.ones(512))
        checkpoint_and_replicate(engine, alloc, ck, helper)
        src.nvmm.store.write("r0/a#v0", 0, np.full(16, 1, dtype=np.uint8))
        src.nvmm.store.flush()
        src.nvmm.crash_process("r0")
        mgr = RestartManager(src, fabric=fabric, node_id=0)
        report = mgr.restart_process_sync(
            "r0", remote_target=helper.targets["r0"], remote_node=1
        )
        assert report.allocator.chunk("a").dirty_local

    def test_corruption_without_remote_raises(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        alloc.nvalloc("a", 4096).write(0, np.ones(512))
        checkpoint_and_replicate(engine, alloc, ck, helper)
        src.nvmm.store.write("r0/a#v0", 0, np.full(16, 1, dtype=np.uint8))
        src.nvmm.store.flush()
        src.nvmm.crash_process("r0")
        mgr = RestartManager(src)
        with pytest.raises(NoCheckpointAvailable):
            mgr.restart_process_sync("r0")

    def test_never_committed_without_remote_raises(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        alloc.nvalloc("a", 4096)
        alloc._persist_metadata()
        src.nvmm.cache_flush()
        src.nvmm.crash_process("r0")
        with pytest.raises(NoCheckpointAvailable):
            RestartManager(src).restart_process_sync("r0")


class TestHardFailureRestart:
    def test_rebuild_entirely_from_buddy(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        data = np.arange(512, dtype=np.float64)
        alloc.nvalloc("a", 4096).write(0, data)
        alloc.nvalloc("b", 2048).write(0, np.ones(256))
        checkpoint_and_replicate(engine, alloc, ck, helper)
        # the node is gone; a replacement context starts empty
        replacement = make_standalone_context(name="n0v2", engine=engine)
        mgr = RestartManager(replacement, fabric=fabric, node_id=0)
        proc = engine.process(
            mgr.restart_from_remote("r0", helper.targets["r0"], remote_node=1)
        )
        engine.run()
        report = proc.value
        assert report.chunks_remote == 2
        assert np.array_equal(report.allocator.chunk("a").view(np.float64), data)

    def test_empty_buddy_rejected(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        alloc.nvalloc("a", 4096)
        replacement = make_standalone_context(name="n0v2", engine=engine)
        mgr = RestartManager(replacement, fabric=fabric, node_id=0)
        proc = engine.process(
            mgr.restart_from_remote("r0", helper.targets["r0"], remote_node=1)
        )
        engine.run()
        assert isinstance(proc.exception, NoCheckpointAvailable)

    def test_requires_fabric(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world()
        mgr = RestartManager(src)  # no fabric/node_id
        proc = engine.process(
            mgr.restart_from_remote("r0", helper.targets["r0"], remote_node=1)
        )
        engine.run()
        assert isinstance(proc.exception, NoCheckpointAvailable)

    def test_phantom_rebuild(self):
        engine, src, dst, fabric, alloc, ck, helper = make_world(phantom=True)
        alloc.nvalloc("a", MB(2)).touch()
        checkpoint_and_replicate(engine, alloc, ck, helper)
        replacement = make_standalone_context(name="n0v2", engine=engine)
        mgr = RestartManager(replacement, fabric=fabric, node_id=0)
        proc = engine.process(
            mgr.restart_from_remote(
                "r0", helper.targets["r0"], remote_node=1, phantom=True
            )
        )
        engine.run()
        assert proc.value.bytes_remote == MB(2)
