"""Property-based tests of the DCPCP predictor: convergence on
periodic workloads, safety (eligibility never blocks forever within an
interval once the pattern repeats), and state-machine consistency."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.prediction import ModificationStateMachine, PredictionTable


class FakeChunk:
    def __init__(self, cid):
        self.chunk_id = cid


# per-chunk modification counts for a periodic workload
workload = st.dictionaries(
    keys=st.integers(0, 6),
    values=st.integers(1, 8),
    min_size=1,
    max_size=6,
)


def run_interval(table, counts):
    table.begin_interval()
    for cid, n in sorted(counts.items()):
        for _ in range(n):
            table.observe(FakeChunk(cid))
    table.end_interval()


@given(counts=workload, intervals=st.integers(2, 8))
@settings(max_examples=100, deadline=None)
def test_expected_mods_converges_on_periodic_workload(counts, intervals):
    table = PredictionTable(smoothing=0.5)
    for _ in range(intervals):
        run_interval(table, counts)
    for cid, n in counts.items():
        assert table.expected_mods(FakeChunk(cid)) == pytest.approx(n, rel=1e-6)


@given(counts=workload)
@settings(max_examples=100, deadline=None)
def test_chunk_becomes_eligible_after_its_last_observed_mod(counts):
    """Safety: on a repeating workload, every chunk is eligible by the
    time its learned modification count arrives — DCPCP never starves
    a chunk past its final write."""
    table = PredictionTable(smoothing=0.5)
    run_interval(table, counts)  # learning
    table.begin_interval()
    for cid, n in sorted(counts.items()):
        chunk = FakeChunk(cid)
        for _ in range(n):
            table.observe(chunk)
        assert table.eligible(chunk)


@given(counts=workload)
@settings(max_examples=100, deadline=None)
def test_remaining_mods_monotone_within_interval(counts):
    table = PredictionTable(smoothing=0.5)
    run_interval(table, counts)
    table.begin_interval()
    for cid, n in sorted(counts.items()):
        chunk = FakeChunk(cid)
        prev = table.remaining_mods(chunk)
        for _ in range(n):
            table.observe(chunk)
            cur = table.remaining_mods(chunk)
            assert cur <= prev
            prev = cur
        assert table.remaining_mods(chunk) == 0.0


@given(
    sequence=st.lists(st.integers(0, 4), min_size=2, max_size=60),
)
@settings(max_examples=100, deadline=None)
def test_state_machine_transition_conservation(sequence):
    """Total transition count equals observations minus walk starts."""
    m = ModificationStateMachine()
    for cid in sequence:
        m.observe(cid)
    assert sum(m.transitions.values()) == len(sequence) - 1


@given(
    sequence=st.lists(st.integers(0, 4), min_size=1, max_size=40),
    resets=st.integers(1, 5),
)
@settings(max_examples=80, deadline=None)
def test_state_machine_resets_break_walks(sequence, resets):
    m = ModificationStateMachine()
    total_obs = 0
    for _ in range(resets):
        m.reset_position()
        for cid in sequence:
            m.observe(cid)
            total_obs += 1
    assert sum(m.transitions.values()) == total_obs - resets


@given(counts=workload)
@settings(max_examples=60, deadline=None)
def test_accuracy_bounded(counts):
    table = PredictionTable()
    for cid in counts:
        table.record_outcome(FakeChunk(cid), was_redundant=(cid % 2 == 0))
    assert 0.0 <= table.accuracy() <= 1.0
