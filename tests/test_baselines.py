"""Baseline path models and named configurations."""

import pytest

from repro.baselines import (
    MemoryPathModel,
    RamdiskPathModel,
    async_noprecopy_config,
    blocking_local_policy,
    precopy_config,
    precopy_local_policy,
)
from repro.config import PrecopyPolicy
from repro.units import MB


class TestPathModels:
    def test_same_copy_cost_different_path_cost(self):
        mem = MemoryPathModel().checkpoint_costs(MB(100), 12)
        ram = RamdiskPathModel().checkpoint_costs(MB(100), 12)
        assert mem.copy == pytest.approx(ram.copy)
        assert ram.total > mem.total

    def test_ramdisk_pays_serialization_and_syscalls(self):
        ram = RamdiskPathModel().checkpoint_costs(MB(100), 12)
        assert ram.serialization > 0
        assert ram.syscalls > 0

    def test_memory_path_no_serialization(self):
        mem = MemoryPathModel().checkpoint_costs(MB(100), 12)
        assert mem.serialization == 0.0
        assert mem.syscalls == 0.0

    def test_contention_raises_both(self):
        solo = RamdiskPathModel().checkpoint_time(MB(100), 1)
        packed = RamdiskPathModel().checkpoint_time(MB(100), 12)
        assert packed > solo

    def test_costs_scale_with_size(self):
        m = RamdiskPathModel()
        assert m.checkpoint_time(MB(200)) > m.checkpoint_time(MB(100))

    def test_checkpoint_time_equals_cost_total(self):
        m = MemoryPathModel()
        assert m.checkpoint_time(MB(10), 4) == pytest.approx(
            m.checkpoint_costs(MB(10), 4).total
        )


class TestNamedConfigs:
    def test_blocking_policy(self):
        assert blocking_local_policy().mode == PrecopyPolicy.NONE

    def test_precopy_policy_default_dcpcp(self):
        assert precopy_local_policy().mode == PrecopyPolicy.DCPCP

    def test_precopy_policy_mode_selectable(self):
        assert precopy_local_policy("cpc").mode == "cpc"

    def test_async_noprecopy_config_shape(self):
        cfg = async_noprecopy_config(40, 120)
        assert cfg.precopy.mode == PrecopyPolicy.NONE
        assert not cfg.remote_precopy
        assert cfg.local_interval == 40
        assert cfg.remote_interval == 120

    def test_precopy_config_shape(self):
        cfg = precopy_config(40, 120)
        assert cfg.precopy.mode == PrecopyPolicy.DCPCP
        assert cfg.remote_precopy
