"""Regenerate the golden-equivalence fixtures.

The fixtures pin the *pre-refactor* checkpoint behaviour: the policy /
destination / engine split (ISSUE 4) must reproduce these records
byte-for-byte.  Regenerate only when a PR deliberately changes
simulated semantics (and say so in the PR):

    PYTHONPATH=src python tests/golden/generate_fixtures.py

Two fixtures:

* ``pinned_grid_records.json`` — the 16-cell pinned bench grid
  (``repro.tools.bench.PINNED_GRID``) executed on the serial reference
  path (``workers=1``, no cache).  Records are the flattened
  ``RunResult.to_dict()`` dicts, fully determined by the simulated
  clock — no wall-clock fields.
* ``standalone_schedules.json`` — one standalone single-rank scenario
  per paper mode (none/cpc/dcpc/dcpcp): a scripted app dirtying a
  fixed chunk set between coordinated checkpoints.  Captures every
  ``CheckpointStats`` field per checkpoint plus the pre-copy engine's
  accounting — the exact schedule each policy produces.
"""

from __future__ import annotations

import json
import os
import sys

FIXTURE_DIR = os.path.dirname(os.path.abspath(__file__))

#: compute seconds before each coordinated checkpoint
INTERVAL_S = 20.0
#: seconds before each checkpoint at which the hot chunk is re-written —
#: late enough to land *after* DCPC's learned threshold time, so DCPC
#: pre-copies it redundantly while DCPCP's prediction withholds it
LATE_TOUCH_S = 0.05
#: how many coordinated checkpoints each standalone scenario runs
N_CHECKPOINTS = 5
#: (name, MB) of the standalone chunk set — mixed sizes so largest-first
#: pre-copy ordering matters
CHUNKS_MB = [("state", 40), ("grid", 25), ("params", 10), ("log", 5)]
#: the chunk re-dirtied right before every checkpoint (LAMMPS' 3-D
#: result array in the paper — modified until the end of the iteration)
HOT_CHUNK = "state"
#: chunk names touched at the start of interval k (k = 0 .. N-1);
#: "params" goes quiet after the first interval so DCPCP's prediction
#: table has a write-once chunk to learn
TOUCH_SCRIPT = [
    ["state", "grid", "params"],
    ["state", "grid"],
    ["state", "grid"],
    ["state"],
    ["state", "grid"],
]

MODES = ["none", "cpc", "dcpc", "dcpcp"]


def standalone_schedule(mode: str) -> dict:
    from repro.alloc import NVAllocator
    from repro.config import PrecopyPolicy
    from repro.core import LocalCheckpointer, make_standalone_context
    from repro.units import MB

    ctx = make_standalone_context(name="golden")
    alloc = NVAllocator(
        "p0", ctx.nvmm, ctx.dram, phantom=True, clock=lambda: ctx.engine.now
    )
    chunks = {name: alloc.nvalloc(name, MB(mb)) for name, mb in CHUNKS_MB}
    ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(mode=mode))
    ck.start_background()

    def app():
        for round_no in range(N_CHECKPOINTS):
            for name in TOUCH_SCRIPT[round_no]:
                chunks[name].touch()
            yield ctx.engine.timeout(INTERVAL_S - LATE_TOUCH_S)
            chunks[HOT_CHUNK].touch()
            yield ctx.engine.timeout(LATE_TOUCH_S)
            yield from ck.checkpoint(blocking=False)
        ck.stop_background()

    ctx.engine.process(app(), name="app")
    ctx.engine.run()

    record = {
        "mode": mode,
        "checkpoints": [
            {
                "start": s.start,
                "end": s.end,
                "bytes_copied": s.bytes_copied,
                "chunks_copied": s.chunks_copied,
                "chunks_skipped": s.chunks_skipped,
                "flush_cost": s.flush_cost,
            }
            for s in ck.history
        ],
        "checkpoints_done": ck.checkpoints_done,
        "total_coordinated_bytes": ck.total_coordinated_bytes,
        "total_precopy_bytes": ck.total_precopy_bytes,
        "total_bytes_to_nvm": ck.total_bytes_to_nvm,
        "total_checkpoint_time": ck.total_checkpoint_time,
    }
    if ck.precopy is not None:
        record["precopy"] = {
            "copies": ck.precopy.stats.copies,
            "bytes_copied": ck.precopy.stats.bytes_copied,
            "stale_copies": ck.precopy.stats.stale_copies,
            "redundant_copies": ck.precopy.stats.redundant_copies,
            "faults_induced": ck.precopy.stats.faults_induced,
        }
    return record


def pinned_grid_records() -> list:
    from repro.exec.grid import run_grid
    from repro.tools.bench import PINNED_GRID
    from repro.tools.sweep import parse_sweeps

    base_args, axes_specs = PINNED_GRID
    report = run_grid(base_args, parse_sweeps(list(axes_specs)), workers=1, cache=None)
    return report.records


def main() -> int:
    grid = pinned_grid_records()
    with open(os.path.join(FIXTURE_DIR, "pinned_grid_records.json"), "w") as fh:
        json.dump(grid, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"pinned_grid_records.json: {len(grid)} cells")

    schedules = [standalone_schedule(mode) for mode in MODES]
    with open(os.path.join(FIXTURE_DIR, "standalone_schedules.json"), "w") as fh:
        json.dump(schedules, fh, indent=1, sort_keys=True)
        fh.write("\n")
    for rec in schedules:
        print(
            f"standalone[{rec['mode']}]: {rec['checkpoints_done']} ckpts, "
            f"{rec['total_bytes_to_nvm']} bytes to NVM"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
