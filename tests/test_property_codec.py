"""Property-based tests of the payload codec layer.

Three invariants, each over Hypothesis-generated inputs:

* ``decode(encode(x)) == x`` for **every** registered codec, over
  arbitrary byte strings and block sizes (including ragged tails,
  empty input, and repeated-content buffers built to trigger dedup
  references);

* delta decode against any buffer other than the encode-time base
  raises :class:`CodecError` — never returns corrupt bytes;

* :class:`BlockStore` refcounts never go negative and the refcount
  index always equals what :meth:`BlockStore.rebuild` re-derives from
  the slot maps, across arbitrary stage/commit/abort/overwrite/
  drop_chunk programs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import (
    AutoCodec,
    BlockStore,
    DedupCodec,
    DeltaCodec,
    RawCodec,
    resolve_codec,
)
from repro.errors import CodecError

pytestmark = pytest.mark.codec

BLOCKS = st.sampled_from([64, 256, 4096])

# arbitrary content, sized to span several blocks at the small block
# sizes; a few repeated-block buffers so dedup's reference path is hit
payloads = st.one_of(
    st.binary(max_size=2048),
    st.builds(
        lambda blk, reps: blk * reps,
        st.binary(min_size=64, max_size=64),
        st.integers(1, 8),
    ),
)


def _mutate(data: bytes, pos: int) -> bytes:
    out = bytearray(data)
    out[pos % len(out)] ^= 0x01
    return bytes(out)


# ---------------------------------------------------------------------------
# Round trips.
# ---------------------------------------------------------------------------


@given(data=payloads, block=BLOCKS)
@settings(max_examples=120, deadline=None)
def test_raw_and_dedup_round_trip(data, block):
    assert RawCodec().decode_bytes(RawCodec().encode_bytes(data, block=block)) == data
    store = BlockStore(block=block)
    dedup = DedupCodec()
    first = dedup.encode_bytes(data, store=store, block=block)
    assert dedup.decode_bytes(first, store=store) == data
    # identical content re-encoded against the now-populated store
    # must still round-trip (all-reference wire)
    again = dedup.encode_bytes(data, store=store, block=block)
    assert again.blocks_new == 0
    assert dedup.decode_bytes(again, store=store) == data


@given(base=st.binary(min_size=1, max_size=2048), flips=st.lists(st.integers(0, 1 << 30), max_size=6), block=BLOCKS)
@settings(max_examples=120, deadline=None)
def test_delta_round_trip(base, flips, block):
    data = base
    for pos in flips:
        data = _mutate(data, pos)
    delta = DeltaCodec()
    p = delta.encode_bytes(data, base=base, block=block)
    assert p.changed_bytes == sum(
        a != b for a, b in zip(data, base)
    )
    assert delta.decode_bytes(p, base=base) == data
    if p.changed_bytes == 0:
        # identical buffers ship the fixed header alone
        assert p.data == b""


@given(data=payloads, has_base=st.booleans(), block=BLOCKS)
@settings(max_examples=120, deadline=None)
def test_auto_round_trip_and_picks_minimum(data, has_base, block):
    store = BlockStore(block=block)
    base = bytes(len(data)) if has_base and data else None
    auto = AutoCodec()
    p = auto.encode_bytes(data, base=base, store=store, block=block)
    assert p.wire_bytes == min(p.candidates.values())
    assert auto.decode_bytes(p, base=base, store=store) == data


@given(data=st.binary(max_size=512), name=st.sampled_from(["raw", "delta", "dedup", "auto"]))
@settings(max_examples=80, deadline=None)
def test_every_registered_codec_round_trips(data, name):
    codec = resolve_codec(name)
    store = BlockStore(block=64)
    base = bytes(len(data))
    kwargs = {}
    if name in ("delta", "auto"):
        kwargs["base"] = base
    if name in ("dedup", "auto"):
        kwargs["store"] = store
    p = codec.encode_bytes(data, block=64, **kwargs)
    assert codec.decode_bytes(p, **kwargs) == data
    assert p.logical_bytes == len(data)
    assert p.saved_bytes == max(0, p.logical_bytes - p.wire_bytes)


# ---------------------------------------------------------------------------
# Wrong-base deltas fail loudly.
# ---------------------------------------------------------------------------


@given(
    base=st.binary(min_size=1, max_size=1024),
    pos=st.integers(0, 1 << 30),
    wrong_pos=st.integers(0, 1 << 30),
)
@settings(max_examples=120, deadline=None)
def test_delta_against_wrong_base_always_raises(base, pos, wrong_pos):
    data = _mutate(base, pos)
    p = DeltaCodec().encode_bytes(data, base=base)
    wrong = _mutate(base, wrong_pos)
    assert wrong != base  # single bit flip can never be identity
    with pytest.raises(CodecError):
        DeltaCodec().decode_bytes(p, base=wrong)
    # and the true base still works after the refused attempt
    assert DeltaCodec().decode_bytes(p, base=base) == data


# ---------------------------------------------------------------------------
# BlockStore refcount invariants.
# ---------------------------------------------------------------------------

CHUNKS = ["a", "b"]
SLOTS = [0, 1]
NBLOCKS = 4

store_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("stage"),
            st.sampled_from(CHUNKS),
            st.sampled_from(SLOTS),
            st.lists(
                st.tuples(st.integers(0, NBLOCKS - 1), st.integers(1, 5)),
                min_size=1,
                max_size=NBLOCKS,
            ),
        ),
        st.tuples(st.just("commit"), st.none(), st.none(), st.none()),
        st.tuples(st.just("abort"), st.none(), st.none(), st.none()),
        st.tuples(st.just("begin_round"), st.none(), st.none(), st.none()),
        st.tuples(st.just("drop"), st.sampled_from(CHUNKS), st.none(), st.none()),
        st.tuples(st.just("rebuild"), st.none(), st.none(), st.none()),
    ),
    max_size=30,
)


@given(program=store_ops)
@settings(max_examples=200, deadline=None)
def test_store_refcounts_never_negative(program):
    """Any stage/commit/abort/drop/rebuild interleaving: counts stay
    positive, the index matches a model rebuilt from the slot maps,
    and total refs equal the live slot-map entries."""
    s = BlockStore(block=64)
    for op, name, slot, writes in program:
        if op == "stage":
            idx = np.array([i for i, _ in writes], dtype=np.int64)
            dgs = np.array([d for _, d in writes], dtype=np.uint64)
            s.stage(name, slot, idx, dgs)
        elif op == "commit":
            s.commit()
        elif op == "abort":
            s.abort()
        elif op == "begin_round":
            s.begin_round()
        elif op == "drop":
            s.drop_chunk(name)
        else:
            s.rebuild()

        assert (s._counts > 0).all(), "refcount dropped to <= 0 but survived"
        assert len(s._digests) == len(set(s._digests.tolist()))
        # the committed maps are the truth; the index must agree
        live = [v[v != 0] for v in s._slots.values()]
        alld = np.concatenate(live) if live else np.empty(0, np.uint64)
        want_digests, want_counts = np.unique(alld, return_counts=True)
        assert np.array_equal(s._digests, want_digests)
        assert np.array_equal(s._counts, want_counts.astype(np.int64))
        assert s.total_refs == len(alld)
