"""Final coverage block: event edge cases, communication contention,
CLI extension flags, and the faithful (unscaled) workload layouts."""

import numpy as np
import pytest

from repro.apps import CM1Model, GTCModel, RankBinding, SyntheticModel
from repro.alloc import NVAllocator
from repro.core import make_standalone_context
from repro.errors import SimulationError
from repro.net import Fabric
from repro.sim import Engine
from repro.tools.experiment import build_parser, run_experiment
from repro.units import MB


class TestEventEdgeCases:
    def test_timeout_carries_value(self, engine):
        def p():
            return (yield engine.timeout(1.0, value="payload"))

        proc = engine.process(p())
        engine.run()
        assert proc.value == "payload"

    def test_any_of_with_pre_triggered_event(self, engine):
        ev = engine.event()
        ev.succeed("early")

        def p():
            return (yield engine.any_of([ev, engine.timeout(100.0)]))

        proc = engine.process(p())
        engine.run(until=1.0)
        assert proc.value == (0, "early")

    def test_callback_on_failed_event_delivers_failure(self, engine):
        ev = engine.event()
        seen = []
        ev.add_callback(lambda e: seen.append(e.ok))
        ev.fail(RuntimeError("x"))
        engine.run()
        assert seen == [False]
        assert isinstance(ev.exception, RuntimeError)

    def test_nested_process_chain(self, engine):
        """A 50-deep chain of processes each waiting on the next."""

        def leaf():
            yield engine.timeout(1.0)
            return 0

        def link(child_proc):
            value = yield child_proc
            return value + 1

        proc = engine.process(leaf())
        for _ in range(50):
            proc = engine.process(link(proc))
        engine.run()
        assert proc.value == 50
        assert engine.now == pytest.approx(1.0)

    def test_all_of_value_error_on_untriggered_value(self, engine):
        ev = engine.event()
        with pytest.raises(SimulationError):
            _ = ev.value


class TestCommunicationContention:
    def test_shared_link_stretches_iterations(self):
        """Two ranks on one node bursting through the same egress link
        take longer than one rank alone."""

        def run(n_ranks):
            ctx = make_standalone_context(name=f"cc{n_ranks}")
            fabric = Fabric(ctx.engine, 2)
            app = SyntheticModel(
                checkpoint_mb_per_rank=10, chunk_mb=10,
                iteration_compute_time=1.0,
                comm_mb_per_iteration=2000.0,  # heavy halo exchange
                comm_bursts=1,
            )
            procs = []
            for i in range(n_ranks):
                alloc = NVAllocator(f"r{i}", ctx.nvmm, ctx.dram, phantom=True)
                binding = RankBinding(
                    rank=f"r{i}", node_id=0, allocator=alloc,
                    engine=ctx.engine, fabric=fabric, neighbors=[1],
                )
                app.allocate(binding, i)
                procs.append(ctx.engine.process(app.compute_iteration(binding, 0)))
            ctx.engine.run()
            assert all(p.ok for p in procs)
            return ctx.engine.now

        assert run(2) > run(1) * 1.2

    def test_comm_bytes_tagged_app(self):
        ctx = make_standalone_context(name="cc")
        fabric = Fabric(ctx.engine, 2)
        app = SyntheticModel(checkpoint_mb_per_rank=10, chunk_mb=10,
                             iteration_compute_time=1.0,
                             comm_mb_per_iteration=64.0)
        alloc = NVAllocator("r0", ctx.nvmm, ctx.dram, phantom=True)
        binding = RankBinding(rank="r0", node_id=0, allocator=alloc,
                              engine=ctx.engine, fabric=fabric, neighbors=[1])
        app.allocate(binding, 0)
        ctx.engine.process(app.compute_iteration(binding, 0))
        ctx.engine.run()
        assert fabric.total_bytes(":app") == pytest.approx(MB(64), rel=0.01)


class TestCliExtensionFlags:
    BASE = [
        "--app", "synthetic", "--nodes", "2", "--ranks-per-node", "2",
        "--iterations", "4", "--local-interval", "10",
        "--remote-interval", "30", "--checkpoint-mb", "40",
        "--chunk-mb", "10",
    ]

    def test_pfs_flag_disables_remote(self):
        args = build_parser().parse_args([*self.BASE, "--mode", "none",
                                          "--pfs-gbps", "0.5"])
        res = run_experiment(args)
        assert res.remote_rounds == 0
        assert res.iterations == 4

    def test_compress_flag_shrinks_fabric_ckpt_bytes(self):
        plain = run_experiment(build_parser().parse_args(self.BASE))
        squeezed = run_experiment(
            build_parser().parse_args([*self.BASE, "--compress-ratio", "0.5"])
        )
        assert squeezed.fabric_ckpt_bytes < plain.fabric_ckpt_bytes
        # protected volume is essentially unchanged — only the wire
        # format shrank (faster transfers can shift the last in-flight
        # chunk across a round boundary, hence the tolerance)
        plain_total = plain.remote_round_bytes + plain.remote_precopy_bytes
        squeezed_total = squeezed.remote_round_bytes + squeezed.remote_precopy_bytes
        assert squeezed_total == pytest.approx(plain_total, rel=0.15)


class TestFaithfulLayouts:
    """The unscaled (small_chunks=None) Table-IV layouts."""

    def test_gtc_faithful_small_bucket(self):
        specs = GTCModel(small_chunks=None).chunk_specs(0)
        smalls = [s for s in specs if s.name.startswith("diag_")]
        assert len(smalls) > 150  # hundreds of sub-MB diagnostics
        for s in smalls:
            assert 500 * 1024 <= s.nbytes <= MB(1)

    def test_cm1_faithful_small_bucket(self):
        specs = CM1Model(small_chunks=None).chunk_specs(0)
        smalls = [s for s in specs if s.name.startswith("diag_")]
        assert len(smalls) > 150
        for s in smalls:
            assert 500 * 1024 <= s.nbytes <= MB(1)

    def test_faithful_layout_runs_an_iteration(self):
        """A full faithful GTC rank (hundreds of chunks) still executes
        an iteration + checkpoint promptly."""
        from repro.config import PrecopyPolicy
        from repro.core import LocalCheckpointer

        ctx = make_standalone_context(name="faithful")
        app = GTCModel(small_chunks=None)
        alloc = NVAllocator("r0", ctx.nvmm, ctx.dram, phantom=True,
                            clock=lambda: ctx.engine.now)
        binding = RankBinding(rank="r0", node_id=0, allocator=alloc, engine=ctx.engine)
        app.allocate(binding, 0)
        ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(mode="dcpcp"))
        ck.start_background()

        def drive():
            for it in range(2):
                yield from app.compute_iteration(binding, it)
                yield from ck.checkpoint(blocking=False)
            ck.stop_background()

        ctx.engine.process(drive())
        ctx.engine.run()
        assert ck.checkpoints_done == 2
        assert len(alloc.chunks()) > 150
