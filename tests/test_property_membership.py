"""Property test: :class:`BuddyDirectory` invariants survive any
join/drain/depart/fail/recover sequence.

The directory is the single source of truth for who protects whom;
every elastic-membership and failover path mutates it.  This drives it
through arbitrary operation sequences — mirroring how the cluster
runner uses it (orphans are repaired whenever their buddy fails, a
depart is only attempted through the evacuate-first path) — and
asserts :meth:`BuddyDirectory.check_invariants` holds after every
step: no self-pairing, no pairing left on a departed node, and every
healthy non-retired node that *can* be protected *is* paired with a
healthy buddy.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.topology import Topology
from repro.resilience import BuddyDirectory, MigrationPlanner

pytestmark = pytest.mark.migration

N_NODES = 6
OPS = ["join", "drain", "depart", "fail", "recover"]

op_sequences = st.lists(
    st.tuples(st.sampled_from(OPS), st.integers(min_value=0, max_value=N_NODES - 1)),
    max_size=40,
)


def apply_op(d: BuddyDirectory, op: str, node: int) -> None:
    """One membership/failure action, with the runner's semantics."""
    if op == "join":
        d.admit(node)
    elif op == "drain":
        if d.is_participant(node):
            d.retire(node)
    elif op == "depart":
        # the controller departs only after evacuation: re-home every
        # orphan first (cutover == rebind), then depart if that worked
        if d.is_participant(node):
            for orphan in d.orphans_of(node):
                cands = [c for c in d.candidates_for(orphan) if c != node]
                if cands:
                    d.rebind(orphan, cands[0])
            d.depart(node)
    elif op == "fail":
        d.mark_failed(node)
    elif op == "recover":
        d.mark_recovered(node)


def repair_sweep(d: BuddyDirectory) -> None:
    """What failover does continuously: re-pair every node whose buddy
    is unhealthy (in deterministic order)."""
    for n in sorted(d.nodes):
        if d.is_healthy(n):
            d.repair(n)


@settings(max_examples=120, deadline=None)
@given(ops=op_sequences)
def test_invariants_hold_after_any_sequence(ops):
    d = BuddyDirectory(Topology(N_NODES, 2), nodes=[0, 1, 2, 3])
    for op, node in ops:
        apply_op(d, op, node)
        repair_sweep(d)
        problems = d.check_invariants()
        assert not problems, f"after {op}({node}): {problems}"


@settings(max_examples=60, deadline=None)
@given(ops=op_sequences)
def test_planner_plans_stay_consistent(ops):
    """Whatever state a sequence leaves behind, join/drain plans only
    ever name healthy participants and never the node itself."""
    d = BuddyDirectory(Topology(N_NODES, 2), nodes=[0, 1, 2, 3])
    for op, node in ops:
        apply_op(d, op, node)
        repair_sweep(d)
    planner = MigrationPlanner(d)
    for n in list(d.nodes):
        if not d.is_healthy(n):
            continue
        plans = planner.plan_join(n) if not d.is_retired(n) else []
        plans += planner.plan_drain(n)
        for p in plans:
            assert p.node != p.to_buddy
            assert d.is_participant(p.to_buddy)
            assert d.is_healthy(p.to_buddy)
            assert not d.is_retired(p.to_buddy) or p.to_buddy == n
