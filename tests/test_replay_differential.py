"""Differential replay verification: live run vs trace-driven replay.

The replay engine's faithful path derives byte accounting verbatim
from the captured events, so for the *same* configuration it must
reproduce the live run's :class:`CheckpointStats`/:class:`RunResult`
numbers integer-for-integer — coordinated bytes, pre-copy bytes,
bytes saved by incremental extents, and the full commit ordering.
These tests run that oracle across every policy mode and both copy
granularities, plus the Jsonl round-trip (capture -> serialize ->
read -> replay must lose nothing).
"""

from __future__ import annotations

import pytest

from repro.replay import (
    ReplayEngine,
    capture_cell,
    compare_to_run,
)

pytestmark = pytest.mark.replay

#: small but real cluster cell: 2 nodes x 2 ranks, remote tier on
BASE = {
    "app": "lammps",
    "nodes": 2,
    "ranks_per_node": 2,
    "iterations": 3,
    "local_interval": 20.0,
    "remote_interval": 60.0,
}

MODES = ["none", "cpc", "dcpc", "dcpcp"]
GRANULARITIES = ["chunk", "page"]


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("granularity", GRANULARITIES)
def test_same_config_replay_is_byte_exact(mode, granularity, assert_replay_matches):
    cap = capture_cell(
        dict(BASE, mode=mode, granularity=granularity, copy_granularity=granularity)
    )
    cap = assert_replay_matches(cap)
    acc = cap.engine().faithful()
    # the oracle compared everything; spot-check the values are real
    assert acc.bytes_copied > 0 or acc.precopy_bytes > 0
    assert len(acc.commits) == cap.result.local_checkpoints


def test_commit_ordering_matches_live_history(assert_replay_matches):
    cap = assert_replay_matches(dict(BASE, mode="dcpcp"))
    acc = cap.engine().faithful()
    ordering = acc.commit_ordering()
    # strictly sorted canonical order, one commit per rank-interval
    assert ordering == sorted(ordering)
    assert len(ordering) == cap.result.local_checkpoints
    actors = {actor for _, actor, _, _ in ordering}
    assert len(actors) == cap.result.n_ranks


def test_jsonl_round_trip_preserves_exactness(tmp_path, assert_replay_matches):
    """capture -> Jsonl on disk -> read back -> still byte-exact."""
    cap = capture_cell(dict(BASE, mode="dcpcp", copy_granularity="page"))
    path = tmp_path / "trace.jsonl"
    cap.write_jsonl(str(path))
    engine = ReplayEngine.from_jsonl(str(path))
    assert engine.captured_config["mode"] == "dcpcp"
    report = compare_to_run(engine.faithful(), cap.result)
    assert report.matches, report.describe()
    # the disk trip must not change a single event
    assert engine.events == list(cap.events)


def test_page_granularity_reports_bytes_saved(assert_replay_matches):
    cap = assert_replay_matches(
        dict(BASE, mode="dcpcp", granularity="page", copy_granularity="page")
    )
    acc = cap.engine().faithful()
    live_saved = sum(
        s.checkpointer.total_bytes_saved for s in cap.result.cluster.all_ranks()
    )
    assert acc.bytes_saved == live_saved
    assert cap.result.bytes_saved == live_saved


def test_divergence_report_catches_tampering():
    """The oracle is falsifiable: drop one copy event and it must
    report exactly the metrics that byte-loss perturbs."""
    cap = capture_cell(dict(BASE, mode="dcpcp"))
    drop = next(
        i
        for i, e in enumerate(cap.events)
        if e.kind == "chunk.copied"
        and getattr(e, "stream", "") == "local"
        and getattr(e, "phase", "") == "coordinated"
    )
    tampered = [e for i, e in enumerate(cap.events) if i != drop]
    assert len(tampered) == len(cap.events) - 1
    engine = ReplayEngine.from_events(tampered, meta=cap.meta)
    report = compare_to_run(engine.faithful(), cap.result)
    assert not report.matches
    diverged = {d.metric for d in report.divergences}
    assert "coordinated_bytes" in diverged


def test_whatif_none_upper_bounds_precopying_modes():
    """Sanity on the model path: the no-pre-copy baseline coordinates
    at least as many bytes as any pre-copying policy, and total NVM
    traffic is conserved across policy what-ifs of one trace."""
    cap = capture_cell(dict(BASE, mode="dcpcp"))
    engine = cap.engine()
    results = {m: engine.whatif(m) for m in MODES}
    for mode in ("cpc", "dcpc", "dcpcp"):
        assert results["none"].bytes_copied >= results[mode].bytes_copied
        assert results[mode].coverage == 1.0
    # same-mode what-if must agree with the faithful split exactly:
    # the model re-derives the captured schedule from its own epochs
    acc = engine.faithful()
    assert results["dcpcp"].bytes_copied == acc.bytes_copied
    assert results["dcpcp"].precopy_bytes == acc.precopy_bytes


def test_replay_record_marks_faithful_vs_model():
    cap = capture_cell(dict(BASE, mode="cpc"))
    engine = cap.engine()
    same = engine.replay("cpc")
    other = engine.replay("none")
    assert same["replay.faithful"] is True
    assert other["replay.faithful"] is False
    assert other["replay.coordinated_gb"] >= same["replay.coordinated_gb"]
