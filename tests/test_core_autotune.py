"""Online autotuning: IntervalTuner estimate edges and the
OnlinePolicyTuner bandit.

The bandit tests drive the tuner with a stub engine and synthetic
stationary costs, so convergence is checked against a known-best arm:
after the forced first tour and epsilon decay, the tuner must settle
on (or within 10% of) the cheapest fixed policy.  The live test runs
a real autotuned cluster cell and asserts the switches surface both
in :class:`RunResult` and as ``autotune.switch`` trace events.
"""

from __future__ import annotations

import math
from types import SimpleNamespace

import pytest

from repro.core.autotune import IntervalTuner, OnlinePolicyTuner
from repro.core.threshold import ThresholdEstimator
from repro.errors import ConfigError
from repro.metrics.trace import BUS, ChunkCopiedEvent, RingBufferSink

# ---------------------------------------------------------------------------
# IntervalTuner: estimate edges.
# ---------------------------------------------------------------------------


class TestIntervalTunerEstimates:
    def test_mtbf_is_prior_before_any_observation(self):
        tuner = IntervalTuner(30.0, prior_mtbf=3600.0, prior_weight=1.0)
        assert tuner.mtbf_estimate() == 3600.0

    def test_failure_free_progress_raises_the_estimate(self):
        tuner = IntervalTuner(30.0, prior_mtbf=3600.0)
        tuner.observe_progress(7200.0)
        assert tuner.mtbf_estimate() > 3600.0

    def test_single_failure_blends_prior_and_observation(self):
        tuner = IntervalTuner(30.0, prior_mtbf=3600.0, prior_weight=1.0)
        tuner.observe_failure(1800.0)
        # 1 pseudo-failure over 3600 s + 1 real failure over 1800 s
        assert tuner.mtbf_estimate() == pytest.approx((3600.0 + 1800.0) / 2)

    def test_many_failures_swamp_the_prior(self):
        tuner = IntervalTuner(30.0, prior_mtbf=3600.0, prior_weight=1.0)
        for i in range(1, 101):
            tuner.observe_failure(i * 100.0)
        # observed MTBF is 100 s; one 3600 s pseudo-failure over 101
        # failures pulls it up by only a third
        assert tuner.mtbf_estimate() == pytest.approx((3600.0 + 10000.0) / 101)
        assert tuner.mtbf_estimate() < 150.0

    def test_recommendation_is_initial_interval_before_any_cost(self):
        tuner = IntervalTuner(30.0)
        assert tuner.recommended_interval() == 30.0

    def test_recommendation_follows_youngs_formula(self):
        tuner = IntervalTuner(30.0, prior_mtbf=3600.0, smoothing=1.0)
        tuner.observe_checkpoint(2.0)
        expected = math.sqrt(2.0 * 2.0 * 3600.0)
        assert tuner.recommended_interval() == pytest.approx(expected)

    def test_recommendation_clamps_to_the_band(self):
        tuner = IntervalTuner(
            30.0, prior_mtbf=10.0, min_interval=25.0, max_interval=40.0,
            smoothing=1.0,
        )
        tuner.observe_checkpoint(0.001)
        # sqrt(2 * 0.001 * 10) ~ 0.14 s, far below the floor
        assert tuner.recommended_interval() == 25.0

    def test_checkpoint_cost_is_smoothed(self):
        tuner = IntervalTuner(30.0, smoothing=0.5)
        tuner.observe_checkpoint(4.0)
        tuner.observe_checkpoint(2.0)
        assert tuner.checkpoint_cost == pytest.approx(3.0)
        tuner.observe_checkpoint(0.0)  # ignored
        assert tuner.checkpoint_cost == pytest.approx(3.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"initial_interval": 0.0},
            {"initial_interval": 30.0, "smoothing": 0.0},
            {"initial_interval": 30.0, "min_interval": 50.0, "max_interval": 40.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            IntervalTuner(**kwargs)


# ---------------------------------------------------------------------------
# OnlinePolicyTuner: the bandit, on a stub engine.
# ---------------------------------------------------------------------------

#: stationary synthetic per-interval blocking costs; dcpc is the
#: known-best arm the bandit must find
COSTS = {"none": 5.0, "cpc": 3.0, "dcpc": 1.0, "dcpcp": 2.0}


class StubEngine:
    """The minimal surface the tuner contract names: ``policy.mode``,
    ``set_policy`` and ``on_complete``."""

    tag = "r0"

    def __init__(self, mode: str = "none") -> None:
        self.policy = SimpleNamespace(mode=mode)
        self.on_complete = []
        self.set_calls = []

    def set_policy(self, mode: str) -> None:
        self.policy.mode = mode
        self.set_calls.append(mode)


def drive(tuner, engine, n, costs=COSTS):
    """Close *n* intervals through the engine's observer list, each
    costing whatever the currently-held arm costs."""
    for _ in range(n):
        stats = SimpleNamespace(duration=costs[tuner.current])
        for cb in list(engine.on_complete):
            cb(stats)


class TestOnlinePolicyTuner:
    def test_rejects_unknown_strategy_and_empty_arms(self):
        with pytest.raises(ConfigError):
            OnlinePolicyTuner(StubEngine(), strategy="thompson")
        with pytest.raises(ConfigError):
            OnlinePolicyTuner(StubEngine(), arms=())

    def test_forced_first_tour_pulls_every_arm_once(self):
        engine = StubEngine()
        tuner = OnlinePolicyTuner(engine, bandwidth=1.0).attach()
        drive(tuner, engine, len(tuner.arms))
        assert all(tuner.pulls[a] >= 1 for a in tuner.arms)
        tuner.detach()

    def test_epsilon_greedy_converges_to_best_arm(self):
        engine = StubEngine()
        tuner = OnlinePolicyTuner(engine, seed=1, bandwidth=1.0).attach()
        drive(tuner, engine, 60)
        tuner.detach()
        # acceptance bar: end within 10% of the best fixed policy
        assert COSTS[tuner.current] <= 1.1 * min(COSTS.values())
        assert tuner.mean_cost["dcpc"] == pytest.approx(1.0)
        # exploration decayed: most pulls landed on the winner
        assert tuner.pulls["dcpc"] > sum(
            n for a, n in tuner.pulls.items() if a != "dcpc"
        )

    def test_ucb_converges_to_best_arm(self):
        engine = StubEngine()
        tuner = OnlinePolicyTuner(
            engine, strategy="ucb", bandwidth=1.0
        ).attach()
        drive(tuner, engine, 60)
        tuner.detach()
        assert COSTS[tuner.current] <= 1.1 * min(COSTS.values())
        assert tuner.pulls["dcpc"] > max(
            n for a, n in tuner.pulls.items() if a != "dcpc"
        )

    def test_switch_hot_swaps_engine_and_records_transition(self):
        engine = StubEngine(mode="none")
        tuner = OnlinePolicyTuner(engine, seed=3, bandwidth=1.0).attach()
        drive(tuner, engine, 10)
        tuner.detach()
        assert tuner.switches, "forced tour alone guarantees switches"
        # every recorded switch was applied to the engine, in order
        assert [to for _, _, to in tuner.switches] == engine.set_calls
        assert engine.policy.mode == tuner.current

    def test_switches_emit_autotune_events_on_the_bus(self):
        engine = StubEngine(mode="none")
        tuner = OnlinePolicyTuner(engine, seed=3, bandwidth=1.0).attach()
        with BUS.capture(RingBufferSink()) as ring:
            drive(tuner, engine, 10)
        tuner.detach()
        events = ring.of_kind("autotune.switch")
        assert [(e.from_policy, e.to_policy) for e in events] == [
            (frm, to) for _, frm, to in tuner.switches
        ]
        assert all(e.reason == "bandit" and e.actor == "r0" for e in events)

    def test_precopy_traffic_is_metered_off_the_bus(self):
        engine = StubEngine(mode="dcpc")
        tuner = OnlinePolicyTuner(
            engine, arms=("dcpc",), bandwidth=2.0, waste_weight=0.5
        ).attach()
        try:
            copy = dict(t=1.0, chunk="heap-0", nbytes=8, start=0.5,
                        stream="local", phase="precopy")
            BUS.emit(ChunkCopiedEvent(actor="r0:precopy", **copy))
            BUS.emit(ChunkCopiedEvent(actor="r1:precopy", **copy))  # not ours
            stats = SimpleNamespace(duration=3.0)
            # 3.0 blocking + 0.5 * 8 bytes / 2.0 B/s of bus waste
            assert tuner.interval_cost(stats) == pytest.approx(3.0 + 2.0)
            tuner._on_interval_complete(stats)
            # the meter resets at the interval boundary
            assert tuner.interval_cost(stats) == pytest.approx(3.0)
        finally:
            tuner.detach()

    def test_nudge_walks_threshold_margin_without_switching(self):
        threshold = ThresholdEstimator(bandwidth_per_core=1.0, margin=1.25)
        engine = StubEngine(mode="dcpc")
        engine.threshold = threshold
        engine.decision_policy = SimpleNamespace(needs_threshold=True)
        tuner = OnlinePolicyTuner(
            engine, arms=("dcpc",), nudge_margin=True, margin_step=0.1,
            bandwidth=1.0,
        ).attach()
        with BUS.capture(RingBufferSink()) as ring:
            # equal-cost interval reads as "cheap": margin backs off
            tuner._on_interval_complete(SimpleNamespace(duration=2.0))
            assert threshold.margin == pytest.approx(1.15)
            # costlier-than-mean interval: start pre-copy earlier
            tuner._on_interval_complete(SimpleNamespace(duration=9.0))
            assert threshold.margin == pytest.approx(1.25)
        tuner.detach()
        assert tuner.nudges == 2
        assert not tuner.switches
        nudge_events = ring.of_kind("autotune.switch")
        assert all(e.reason == "nudge" for e in nudge_events)
        assert len(nudge_events) == 2

    def test_detach_is_idempotent_and_unhooks_the_engine(self):
        engine = StubEngine()
        tuner = OnlinePolicyTuner(engine, bandwidth=1.0).attach()
        assert engine.on_complete
        tuner.detach()
        tuner.detach()
        assert not engine.on_complete
        assert not BUS.active


# ---------------------------------------------------------------------------
# Live integration: an autotuned cluster run.
# ---------------------------------------------------------------------------


@pytest.mark.replay
def test_autotuned_cluster_run_switches_and_traces(assert_replay_matches):
    from repro.replay import capture_cell

    cap = capture_cell(
        {
            "app": "lammps",
            "nodes": 2,
            "ranks_per_node": 2,
            "iterations": 3,
            "local_interval": 20.0,
            "mode": "dcpcp",
            "autotune": True,
        }
    )
    result = cap.result
    assert result.autotune_switches > 0
    switch_events = [e for e in cap.events if e.kind == "autotune.switch"]
    assert len(switch_events) >= result.autotune_switches
    assert result.autotune_final_policy
    record = result.to_dict()
    assert record["autotune"]["switches"] == result.autotune_switches
    # the faithful replay oracle holds under hot-swapped policies too:
    # accounting is event-verbatim, so switching modes mid-run must not
    # open any live-vs-replay gap
    assert_replay_matches(cap)
