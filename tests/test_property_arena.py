"""Property-based tests for the arena allocator: no overlaps, correct
accounting, full reclamation under arbitrary alloc/free interleavings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc.arena import Arena, SMALL_LIMIT
from repro.config import DRAM_CONFIG
from repro.memory import MemoryDevice

# request sizes spanning small classes, large and huge allocations
sizes = st.one_of(
    st.integers(1, SMALL_LIMIT),
    st.integers(SMALL_LIMIT + 1, 1 << 22),
)

# a program: each step either allocates (size) or frees (index hint)
steps = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), sizes),
        st.tuples(st.just("free"), st.integers(0, 10_000)),
    ),
    max_size=60,
)


def fresh_arena():
    return Arena(MemoryDevice(DRAM_CONFIG), owner="prop")


@given(program=steps)
@settings(max_examples=120, deadline=None)
def test_no_overlaps_any_interleaving(program):
    arena = fresh_arena()
    live = []
    for op, arg in program:
        if op == "alloc":
            live.append(arena.alloc(arg))
        elif live:
            arena.free(live.pop(arg % len(live)))
        arena.check_invariants()
    assert arena.live_allocations == len(live)


@given(program=steps)
@settings(max_examples=120, deadline=None)
def test_accounting_conserved(program):
    arena = fresh_arena()
    live = []
    for op, arg in program:
        if op == "alloc":
            live.append((arena.alloc(arg), arg))
        elif live:
            alloc, _ = live.pop(arg % len(live))
            arena.free(alloc)
    assert arena.bytes_requested == sum(req for _, req in live)
    assert arena.bytes_reserved >= arena.bytes_requested
    # every reservation is at least the request and within the 25%
    # jemalloc fragmentation bound for smalls (page rounding for large)
    for alloc, req in live:
        assert alloc.size >= req


@given(program=steps)
@settings(max_examples=80, deadline=None)
def test_free_everything_returns_to_zero(program):
    arena = fresh_arena()
    live = []
    for op, arg in program:
        if op == "alloc":
            live.append(arena.alloc(arg))
        elif live:
            arena.free(live.pop(arg % len(live)))
    for a in live:
        arena.free(a)
    assert arena.live_allocations == 0
    assert arena.bytes_requested == 0
    assert arena.bytes_reserved == 0


@given(size=sizes)
@settings(max_examples=100, deadline=None)
def test_alloc_free_alloc_reuses_address(size):
    arena = fresh_arena()
    a = arena.alloc(size)
    arena.free(a)
    b = arena.alloc(size)
    assert b.addr == a.addr


@given(sizes_list=st.lists(st.integers(1, SMALL_LIMIT), min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_small_allocations_aligned_to_class(sizes_list):
    arena = fresh_arena()
    for size in sizes_list:
        a = arena.alloc(size)
        assert a.size_class is not None
        assert a.size == a.size_class
        assert (a.addr - 0) % 8 == 0 or a.size_class < 8
