"""Resources: FIFO resource, CPU cores, processor-sharing bandwidth."""

import pytest

from repro.errors import SimulationError, TransferCancelled
from repro.sim import BandwidthResource, CpuCores, Resource, UtilizationTracker
from tests.conftest import run_proc


class TestResource:
    def test_grant_within_capacity(self, engine):
        res = Resource(engine, 2)
        order = []

        def user(i):
            yield res.request()
            order.append(("in", i, engine.now))
            yield engine.timeout(5.0)
            res.release()
            order.append(("out", i, engine.now))

        for i in range(3):
            engine.process(user(i))
        engine.run()
        # third user waits for a release at t=5
        assert ("in", 2, 5.0) in order
        assert engine.now == 10.0

    def test_release_idle_is_error(self, engine):
        res = Resource(engine, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_capacity_validation(self, engine):
        with pytest.raises(SimulationError):
            Resource(engine, 0)

    def test_use_helper(self, engine):
        res = Resource(engine, 1)

        def user():
            yield from res.use(2.0)
            return engine.now

        a = engine.process(user())
        b = engine.process(user())
        engine.run()
        assert a.value == 2.0
        assert b.value == 4.0

    def test_available_accounting(self, engine):
        res = Resource(engine, 3)
        res.request()
        engine.run()
        assert res.in_use == 1
        assert res.available == 2


class TestCpuCores:
    def test_busy_time_per_owner(self, engine):
        cpu = CpuCores(engine, 4)

        def w(owner, dur):
            yield from cpu.busy(owner, dur)

        engine.process(w("helper", 3.0))
        engine.process(w("app", 1.0))
        engine.run()
        assert cpu.busy_time("helper") == pytest.approx(3.0)
        assert cpu.busy_time("app") == pytest.approx(1.0)
        assert cpu.total_busy_time() == pytest.approx(4.0)

    def test_charge_without_queueing(self, engine):
        cpu = CpuCores(engine, 1)
        cpu.charge("helper", 0.5)
        cpu.charge("helper", 0.25)
        assert cpu.busy_time("helper") == pytest.approx(0.75)
        assert engine.now == 0.0  # no time passed

    def test_oversubscription_queues(self, engine):
        cpu = CpuCores(engine, 1)
        done = []

        def w(i):
            yield from cpu.busy(f"w{i}", 1.0)
            done.append(engine.now)

        for i in range(3):
            engine.process(w(i))
        engine.run()
        assert done == [1.0, 2.0, 3.0]


class TestBandwidthPS:
    def test_single_flow_full_rate(self, engine):
        bw = BandwidthResource(engine, 100.0)

        def p():
            yield bw.transfer(500.0)
            return engine.now

        assert run_proc(engine, p()) == pytest.approx(5.0)

    def test_equal_sharing_two_flows(self, engine):
        bw = BandwidthResource(engine, 100.0)
        ends = {}

        def p(name, nbytes):
            yield bw.transfer(nbytes, tag=name)
            ends[name] = engine.now

        engine.process(p("a", 500.0))
        engine.process(p("b", 500.0))
        engine.run()
        # both at 50 B/s -> 10 s each
        assert ends["a"] == pytest.approx(10.0)
        assert ends["b"] == pytest.approx(10.0)

    def test_late_joiner_slows_first(self, engine):
        bw = BandwidthResource(engine, 100.0)
        ends = {}

        def first():
            yield bw.transfer(1000.0, tag="first")
            ends["first"] = engine.now

        def second():
            yield engine.timeout(2.0)
            yield bw.transfer(400.0, tag="second")
            ends["second"] = engine.now

        engine.process(first())
        engine.process(second())
        engine.run()
        assert ends["second"] == pytest.approx(10.0)
        assert ends["first"] == pytest.approx(14.0)

    def test_per_flow_cap(self, engine):
        bw = BandwidthResource(engine, 100.0, per_flow_cap=25.0)

        def p():
            yield bw.transfer(100.0)
            return engine.now

        # alone, still capped at 25 B/s
        assert run_proc(engine, p()) == pytest.approx(4.0)

    def test_capacity_fn_interference(self, engine):
        # capacity shrinks to 50 with 2 flows
        bw = BandwidthResource(
            engine, 100.0, capacity_fn=lambda n: 100.0 if n <= 1 else 50.0
        )
        ends = {}

        def p(name):
            yield bw.transfer(250.0, tag=name)
            ends[name] = engine.now

        engine.process(p("a"))
        engine.process(p("b"))
        engine.run()
        # each runs at 25 B/s -> 10 s
        assert ends["a"] == pytest.approx(10.0)

    def test_zero_byte_transfer_completes_immediately(self, engine):
        bw = BandwidthResource(engine, 100.0)
        ev = bw.transfer(0.0)
        assert ev.triggered

    def test_negative_transfer_rejected(self, engine):
        bw = BandwidthResource(engine, 100.0)
        with pytest.raises(SimulationError):
            bw.transfer(-1.0)

    def test_bytes_accounted_by_tag(self, engine):
        bw = BandwidthResource(engine, 100.0)

        def p():
            yield bw.transfer(300.0, tag="app")
            yield bw.transfer(200.0, tag="ckpt")

        run_proc(engine, p())
        assert bw.bytes_by_tag["app"] == pytest.approx(300.0)
        assert bw.bytes_by_tag["ckpt"] == pytest.approx(200.0)
        assert bw.total_bytes == pytest.approx(500.0)

    def test_cancel_tag_fails_event(self, engine):
        bw = BandwidthResource(engine, 100.0)
        outcome = []

        def p():
            try:
                yield bw.transfer(1000.0, tag="victim")
            except TransferCancelled:
                outcome.append("cancelled")

        engine.process(p())
        engine.run(until=1.0)
        assert bw.cancel_tag("victim") == 1
        engine.run()
        assert outcome == ["cancelled"]
        assert bw.active_flows == 0

    def test_cancel_matching_all(self, engine):
        bw = BandwidthResource(engine, 100.0)
        for tag in ("a", "b", "c"):
            bw.transfer(1e6, tag=tag)
        engine.run(until=0.5)
        assert bw.cancel_matching(None) == 3

    def test_utilization_series_records_rates(self, engine):
        bw = BandwidthResource(engine, 100.0)

        def p():
            yield bw.transfer(100.0)

        run_proc(engine, p())
        assert bw.utilization.peak() == pytest.approx(100.0)
        assert bw.utilization.value_at(2.0) == pytest.approx(0.0)

    def test_per_kind_tracking(self, engine):
        bw = BandwidthResource(engine, 100.0)

        def p():
            yield bw.transfer(100.0, tag="r0:app")

        run_proc(engine, p())
        assert "app" in bw.utilization_by_kind
        assert bw.utilization_by_kind["app"].peak() == pytest.approx(100.0)

    def test_float_dust_flows_complete(self, engine):
        """Flows left with sub-nanosecond remnants must complete, not
        spin (regression test for the livelock found in development)."""
        bw = BandwidthResource(engine, 1e9)
        done = []

        def p(nbytes, delay):
            if delay:
                yield engine.timeout(delay)
            yield bw.transfer(nbytes)
            done.append(engine.now)

        # staggered joins at awkward offsets produce float dust
        engine.process(p(1e8, 0.0))
        engine.process(p(1e8, 0.0333333333))
        engine.process(p(1e8, 0.0666666667))
        engine.run(until=100.0)
        assert len(done) == 3

    def test_conservation_of_bytes(self, engine):
        bw = BandwidthResource(engine, 77.7)

        def p(n):
            yield bw.transfer(n)

        total = 0.0
        for n in (10.0, 123.4, 999.9, 0.5):
            engine.process(p(n))
            total += n
        engine.run()
        assert bw.total_bytes == pytest.approx(total, rel=1e-9)


class TestUtilizationTracker:
    def test_integral_piecewise(self):
        t = UtilizationTracker()
        t.record(0.0, 10.0)
        t.record(5.0, 0.0)
        assert t.integral(0.0, 5.0) == pytest.approx(50.0)
        assert t.integral(0.0, 10.0) == pytest.approx(50.0)
        assert t.integral(2.0, 4.0) == pytest.approx(20.0)

    def test_value_at_before_first_sample(self):
        t = UtilizationTracker()
        t.record(5.0, 3.0)
        assert t.value_at(1.0) == 0.0
        assert t.value_at(5.0) == 3.0

    def test_windowed_series(self):
        t = UtilizationTracker()
        t.record(0.0, 4.0)
        t.record(2.0, 0.0)
        series = t.windowed_series(1.0, 4.0)
        assert [round(v) for _, v in series] == [4, 4, 0, 0]

    def test_peak_with_range(self):
        t = UtilizationTracker()
        t.record(0.0, 1.0)
        t.record(1.0, 9.0)
        t.record(2.0, 2.0)
        assert t.peak() == 9.0
        assert t.peak(t0=2.0) == 2.0

    def test_duplicate_values_collapse(self):
        t = UtilizationTracker()
        t.record(0.0, 5.0)
        t.record(1.0, 5.0)
        assert len(t.samples) == 1

    def test_window_validation(self):
        with pytest.raises(ValueError):
            UtilizationTracker().windowed_series(0.0, 1.0)
