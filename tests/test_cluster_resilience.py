"""End-to-end resilience acceptance scenarios (ISSUE 3).

Scripted failure schedules drive a 4-node/2-rack cluster through
transient link flaps and mid-run hard buddy failures; the run must
complete with every retried transfer delivered or re-synced, a nonzero
degraded-mode span that ends before completion, restart-after-degraded
recovering from the *new* buddy, and bit-identical results under a
fixed seed.
"""

import pytest

from repro.apps import SyntheticModel
from repro.baselines import precopy_config
from repro.cluster import Cluster, ClusterRunner, FailureEvent, ScriptedInjector
from repro.config import ClusterConfig
from repro.metrics import timeline as tl
from repro.units import GB_per_sec


def tiny_app():
    return SyntheticModel(
        checkpoint_mb_per_rank=20,
        chunk_mb=5,
        iteration_compute_time=10.0,
        comm_mb_per_iteration=5,
    )


def build_cluster(seed=5):
    cluster = Cluster(
        ClusterConfig(nodes=4, racks=2),
        nvm_write_bandwidth=GB_per_sec(2.0),
        seed=seed,
    )
    cluster.build(tiny_app(), precopy_config(10, 30), ranks_per_node=2)
    return cluster


def flap_then_buddy_death():
    """A transient link flap on node 1 in the middle of an active
    stream window (the helpers stream in the last ``stream_window``
    seconds before each 30 s round deadline, so [50, 60) is busy),
    then node 1 dies hard during a later compute phase."""
    return [
        FailureEvent(time=52.0, node=1, kind="transient", duration=6.0),
        FailureEvent(time=75.0, node=1, kind="hard"),
    ]


def run_scenario(events, iters=10, seed=5):
    cluster = build_cluster(seed=seed)
    runner = ClusterRunner(cluster, injector=ScriptedInjector(events))
    return cluster, runner, runner.run(iters)


class TestTransientPlusHardFailure:
    @pytest.fixture(scope="class")
    def scenario(self):
        return run_scenario(flap_then_buddy_death())

    def test_run_completes(self, scenario):
        cluster, runner, res = scenario
        assert res.iterations == 10
        assert res.transient_failures == 1
        assert res.hard_failures == 1

    def test_transient_outage_recorded_and_retried(self, scenario):
        cluster, runner, res = scenario
        assert res.timeline.total(tl.OUTAGE, "n1") == pytest.approx(6.0)
        # in-flight transfers torn down by the flap were re-issued
        assert res.transfer_retries >= 1
        # and every retried transfer was eventually delivered
        assert res.transfers_abandoned == 0

    def test_degraded_span_ends_before_completion(self, scenario):
        cluster, runner, res = scenario
        assert res.degraded_entries >= 1
        assert res.degraded_time_total > 0
        spans = [p for p in res.timeline.phases if p.kind == tl.DEGRADED]
        assert spans
        assert all(p.end < res.total_time for p in spans)
        assert res.degraded_time_total < res.total_time

    def test_orphan_repaired_cross_rack_and_resynced(self, scenario):
        cluster, runner, res = scenario
        # node 0 (buddy was node 1) re-pairs to node 3: healthy, other rack
        assert res.buddy_repairs >= 1
        assert runner.directory.repairs[0][:2] == (0, 1)
        assert runner.directory.repairs[0][2] == 3
        assert cluster.nodes[0].helper.buddy_id == 3
        assert res.resyncs_completed >= 1
        assert res.resync_bytes > 0
        assert res.timeline.total(tl.RESYNC) > 0

    def test_protection_restored_at_end(self, scenario):
        cluster, runner, res = scenario
        # the re-paired helper holds committed copies on the new buddy
        helper = cluster.nodes[0].helper
        for target in helper.targets.values():
            assert target.committed_chunks()
        # heartbeats flowed and the monitors saw the buddy die
        assert res.heartbeats_sent > 0
        assert res.buddy_down_detections >= 1

    def test_failures_cost_time(self, scenario):
        cluster, runner, res = scenario
        clean_cluster = build_cluster()
        clean = ClusterRunner(clean_cluster).run(10)
        assert res.total_time > clean.total_time
        assert res.iterations_recomputed >= 1


class TestDeterminism:
    def test_identical_results_and_timelines(self):
        _, _, a = run_scenario(flap_then_buddy_death())
        _, _, b = run_scenario(flap_then_buddy_death())
        da, db = a.to_dict(), b.to_dict()
        assert da == db
        pa = [(p.actor, p.kind, p.start, p.end) for p in a.timeline.phases]
        pb = [(p.actor, p.kind, p.start, p.end) for p in b.timeline.phases]
        assert pa == pb

    def test_retry_jitter_follows_the_seed(self):
        from repro.resilience import RetryPolicy
        from repro.sim.rng import RngStreams

        p = RetryPolicy(jitter=0.25)
        a = [p.backoff_delay(k, RngStreams(5), "resilience.backoff.n0") for k in range(4)]
        b = [p.backoff_delay(k, RngStreams(6), "resilience.backoff.n0") for k in range(4)]
        assert a != b


class TestRestartAfterDegraded:
    def test_second_failure_recovers_from_new_buddy(self):
        # node 1 dies at 58 → node 0 re-pairs to node 3 and re-syncs;
        # node 0 dies at 130 → its replacement must restart from the
        # *new* buddy (node 3), not the long-dead original pairing
        events = [
            FailureEvent(time=58.0, node=1, kind="hard"),
            FailureEvent(time=130.0, node=0, kind="hard"),
        ]
        cluster, runner, res = run_scenario(events, iters=12)
        assert res.iterations == 12
        assert res.hard_failures == 2
        assert cluster.nodes[0].helper.buddy_id == 3
        # the replacement's state came over the fabric from node 3
        assert cluster.fabric.total_bytes(":rfetch") > 0
        # re-sync restored two-level protection before/after the restart
        assert res.resyncs_completed >= 1
        for target in cluster.nodes[0].helper.targets.values():
            assert target.committed_chunks()

    def test_back_to_back_flaps_heal_without_state_loss(self):
        events = [
            FailureEvent(time=22.0, node=2, kind="transient", duration=4.0),
            FailureEvent(time=41.0, node=2, kind="transient", duration=6.0),
        ]
        cluster, runner, res = run_scenario(events, iters=8)
        assert res.iterations == 8
        assert res.transient_failures == 2
        assert res.hard_failures == 0
        assert res.iterations_recomputed == 0  # no rollback for flaps
        assert res.transfers_abandoned == 0
        assert res.timeline.total(tl.OUTAGE, "n2") == pytest.approx(10.0)
        # protection fully restored once the link healed
        for target in cluster.nodes[2].helper.targets.values():
            assert target.committed_chunks()


class TestResilienceGating:
    def test_no_injector_means_no_resilience_machinery(self):
        cluster = build_cluster()
        runner = ClusterRunner(cluster)
        res = runner.run(3)
        assert not runner.resilience_active
        assert runner.directory is None
        assert res.heartbeats_sent == 0
        assert res.degraded_entries == 0

    def test_clean_runs_unchanged_by_resilience_code(self):
        # a run without failures must be bit-identical to the same run
        # before the resilience layer existed: no heartbeat traffic, no
        # retry jitter, nothing
        a = ClusterRunner(build_cluster()).run(4)
        b = ClusterRunner(build_cluster()).run(4)
        assert a.total_time == b.total_time
        assert a.heartbeats_sent == b.heartbeats_sent == 0
