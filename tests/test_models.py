"""The §III analytic model: equations, fixed point, optimal interval."""

import pytest

from repro.models import (
    ModelParams,
    MultilevelModel,
    daly_interval,
    efficiency,
    optimal_local_interval,
    overhead_fraction,
    young_interval,
)
from repro.units import GB_per_sec, MB, MB_per_sec


def params(**kw):
    defaults = dict(
        compute_time=3600.0,
        checkpoint_bytes=MB(400),
        nvm_bw_per_core=MB_per_sec(170),
        remote_bw=MB_per_sec(400),
        local_interval=40.0,
        remote_interval=120.0,
        mtbf_local=3600.0,
        mtbf_remote=14400.0,
    )
    defaults.update(kw)
    return ModelParams(**defaults)


class TestParams:
    def test_t_lcl_is_size_over_bandwidth(self):
        p = params()
        assert p.t_lcl == pytest.approx(MB(400) / MB_per_sec(170))

    def test_precopy_overlap_hides_local_cost(self):
        base = params().t_lcl
        hidden = params(precopy_overlap=0.8).t_lcl
        assert hidden == pytest.approx(0.2 * base)

    def test_k_locals_per_remote(self):
        assert params().k_locals_per_remote == pytest.approx(3.0)
        assert params(remote_interval=10.0).k_locals_per_remote == 1.0

    def test_fetch_times_proportional(self):
        p = params(local_fetch_factor=2.0)
        assert p.r_lcl == pytest.approx(2.0 * MB(400) / MB_per_sec(170))

    def test_validation(self):
        with pytest.raises(ValueError):
            params(compute_time=0.0)
        with pytest.raises(ValueError):
            params(precopy_overlap=1.5)
        with pytest.raises(ValueError):
            params(remote_noise_fraction=-0.1)

    def test_with_replaces(self):
        p = params().with_(local_interval=80.0)
        assert p.local_interval == 80.0
        assert p.compute_time == 3600.0


class TestEquations:
    def test_n_local(self):
        m = MultilevelModel(params())
        assert m.n_local == pytest.approx(90.0)

    def test_t_lcl_total(self):
        m = MultilevelModel(params())
        assert m.local_checkpoint_time() == pytest.approx(90.0 * params().t_lcl)

    def test_local_restart_terms(self):
        p = params()
        m = MultilevelModel(p)
        restart, recomp = m.local_restart_terms()
        f = 3600.0 / 3600.0  # one expected local failure
        assert restart == pytest.approx(f * p.r_lcl)
        assert recomp == pytest.approx(f * (40.0 + p.t_lcl) / 2.0)

    def test_remote_recompute_includes_k(self):
        p = params()
        m = MultilevelModel(p)
        _, recomp = m.remote_restart_terms(total_time=14400.0)
        # F_rmt = 1; K = 3
        assert recomp == pytest.approx(3.0 * (40.0 + p.t_lcl) / 2.0)

    def test_remote_overhead_from_noise(self):
        p = params(remote_noise_fraction=0.05)
        m = MultilevelModel(p)
        # 30 remote intervals * 0.05 * 120 s
        assert m.remote_overhead() == pytest.approx(30 * 6.0)


class TestFixedPoint:
    def test_solution_consistent(self):
        m = MultilevelModel(params())
        bd = m.solve()
        # plugging T_total back in reproduces the remote failure terms
        r_restart, r_recomp = m.remote_restart_terms(bd.total)
        assert bd.remote_restart == pytest.approx(r_restart, rel=1e-6)
        assert bd.remote_recompute == pytest.approx(r_recomp, rel=1e-6)

    def test_total_exceeds_compute(self):
        bd = MultilevelModel(params()).solve()
        assert bd.total > params().compute_time

    def test_no_failures_limit(self):
        p = params(mtbf_local=1e15, mtbf_remote=1e15)
        bd = MultilevelModel(p).solve()
        assert bd.restart_total == pytest.approx(0.0, abs=1e-3)
        assert bd.total == pytest.approx(
            p.compute_time + MultilevelModel(p).local_checkpoint_time(), rel=1e-6
        )

    def test_breakdown_sums(self):
        bd = MultilevelModel(params()).solve()
        assert bd.total == pytest.approx(
            bd.compute + bd.local_checkpoint + bd.remote_overhead
            + bd.restart_total + bd.recompute_total
        )


class TestMonotonicity:
    def test_more_failures_more_time(self):
        fast = MultilevelModel(params(mtbf_local=7200.0)).total_time()
        slow = MultilevelModel(params(mtbf_local=900.0)).total_time()
        assert slow > fast

    def test_more_bandwidth_less_time(self):
        slow = MultilevelModel(params(nvm_bw_per_core=MB_per_sec(100))).total_time()
        fast = MultilevelModel(params(nvm_bw_per_core=MB_per_sec(400))).total_time()
        assert fast < slow

    def test_precopy_improves_total(self):
        base = MultilevelModel(params()).total_time()
        pre = MultilevelModel(params(precopy_overlap=0.7)).total_time()
        assert pre < base

    def test_efficiency_between_0_and_1(self):
        assert 0.0 < efficiency(params()) < 1.0

    def test_efficiency_improves_with_precopy(self):
        assert efficiency(params(precopy_overlap=0.7)) > efficiency(params())

    def test_overhead_fraction_positive(self):
        assert overhead_fraction(params()) > 0.0


class TestOptimalInterval:
    def test_young_formula(self):
        assert young_interval(10.0, 1000.0) == pytest.approx((2 * 10 * 1000) ** 0.5)

    def test_daly_close_to_young_for_small_ratio(self):
        y = young_interval(1.0, 10000.0)
        d = daly_interval(1.0, 10000.0)
        assert d == pytest.approx(y, rel=0.05)

    def test_daly_degenerate_regime(self):
        assert daly_interval(30.0, 10.0) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            young_interval(0.0, 10.0)
        with pytest.raises(ValueError):
            daly_interval(10.0, 0.0)

    def test_numeric_optimum_beats_endpoints(self):
        p = params(mtbf_local=600.0)
        best_i, best_t = optimal_local_interval(p, lo=5.0, hi=600.0)
        assert 5.0 <= best_i <= 600.0
        t_lo = MultilevelModel(p.with_(local_interval=5.0)).total_time()
        t_hi = MultilevelModel(p.with_(local_interval=600.0)).total_time()
        assert best_t <= t_lo + 1e-6
        assert best_t <= t_hi + 1e-6

    def test_numeric_optimum_near_young(self):
        """With only local failures, the model optimum should land in
        the same ballpark as Young's closed form."""
        p = params(mtbf_local=1200.0, mtbf_remote=1e12, remote_noise_fraction=0.0)
        best_i, _ = optimal_local_interval(p, lo=5.0, hi=1000.0)
        y = young_interval(p.t_lcl, p.mtbf_local)
        assert best_i == pytest.approx(y, rel=0.5)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            optimal_local_interval(params(), lo=10.0, hi=5.0)
