PYTHON ?= python
PYTHONPATH := src

.PHONY: test lint faults faults-matrix bench bench-json exec-smoke replay-smoke scale-smoke elastic-smoke dedup-smoke qos-smoke

# tier-1: the full deterministic suite
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# lint: the stdlib AST gate (deprecated-shim import ban) always runs;
# ruff runs when installed (CI installs it, dev containers may not)
lint:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.tools.lintcheck src benchmarks
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipped (the AST gate above still ran)"; \
	fi

# the crash-point fault-injection suite only
faults:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -m faults -q

# standalone matrix report: crash at every registered point with a
# fixed seed and print the per-point outcome table
faults-matrix:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.tools.faultmatrix --random 10

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q

# perf trajectory: run the pinned benchmark subset on the parallel
# cached execution engine and emit the machine-readable baseline
bench-json:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.tools.bench --out BENCH_baseline.json

# smallest end-to-end proof of the execution engine: one sweep cell,
# cold then warm, warm run must execute nothing
exec-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.tools.bench --smoke

# smallest end-to-end proof of the replay engine: capture two live
# cells, replay each faithfully, fail on any byte divergence
replay-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.tools.bench --replay-smoke

# smallest end-to-end proof of the scale work: DES throughput is sane,
# serial / persistent-pool / legacy-forkpool records are identical,
# and the persistent pool out-dispatches forking a Pool per round
scale-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.tools.bench --scale-smoke

# smallest end-to-end proof of elastic membership: join + live migration
# + drain + newcomer failure; incremental failover must beat the
# full-resync baseline and the checkpoint-latency SLO must hold
elastic-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.tools.bench --elastic-smoke

# smallest end-to-end proof of the payload codec: a paired
# incremental-vs-codec grid (wire bytes must drop on every cell) plus
# a real-payload checkpoint -> crash -> digest-verified restart
dedup-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.tools.bench --dedup-smoke

# smallest end-to-end proof of the tenancy layer: the pinned
# multi-tenant scenario must keep the guaranteed tenant's interval/RPO
# attainment at target while best-effort tenants are throttled, with
# queueing + preemption exercised and tenant attribution end-to-end
qos-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.tools.bench --qos-smoke
