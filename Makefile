PYTHON ?= python
PYTHONPATH := src

.PHONY: test faults faults-matrix bench

# tier-1: the full deterministic suite
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# the crash-point fault-injection suite only
faults:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -m faults -q

# standalone matrix report: crash at every registered point with a
# fixed seed and print the per-point outcome table
faults-matrix:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.tools.faultmatrix --random 10

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q
