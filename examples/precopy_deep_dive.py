#!/usr/bin/env python3
"""Inside the pre-copy machinery: thresholds, prediction, hot chunks.

Drives one rank with a LAMMPS-style mix (staged chunks + one hot
chunk) under each pre-copy variant and shows what the runtime learns:
the DCPC threshold T_p = I - D/NVMBW, the DCPCP prediction table
(Fig. 6), and where the bytes moved — background pre-copy vs the
blocking coordinated step.

Run:  python examples/precopy_deep_dive.py
"""

from repro.alloc import NVAllocator
from repro.apps import LammpsModel, RankBinding
from repro.config import PrecopyPolicy
from repro.core import LocalCheckpointer, make_standalone_context
from repro.units import GB_per_sec, to_MB


def run_variant(mode: str, intervals: int = 5):
    ctx = make_standalone_context(name=mode, nvm_write_bandwidth=GB_per_sec(1.0))
    alloc = NVAllocator("r0", ctx.nvmm, ctx.dram, phantom=True,
                        clock=lambda: ctx.engine.now)
    app = LammpsModel()
    binding = RankBinding(rank="r0", node_id=0, allocator=alloc, engine=ctx.engine)
    app.allocate(binding, 0)
    ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(mode=mode))
    ck.start_background()

    def driver():
        for it in range(intervals):
            yield from app.compute_iteration(binding, it)
            yield from ck.checkpoint(blocking=False)
        ck.stop_background()

    ctx.engine.process(driver())
    ctx.engine.run()
    return ctx, alloc, ck, binding


def main() -> None:
    app = LammpsModel()
    print(f"workload: LAMMPS model, {len(app.chunk_specs(0))} chunks, "
          f"{app.checkpoint_mb_per_rank:.0f} MB/rank, hot chunk = x_positions")
    header = (f"{'variant':>8} | {'exec (s)':>9} | {'coord avg (s)':>13} | "
              f"{'precopy (MB)':>12} | {'coord (MB)':>10} | {'redundant':>9} | "
              f"{'faults':>6}")
    print("\n" + header)
    print("-" * len(header))
    for mode in ("none", "cpc", "dcpc", "dcpcp"):
        ctx, alloc, ck, binding = run_variant(mode)
        pc = ck.precopy.stats if ck.precopy else None
        print(f"{mode:>8} | {ctx.engine.now:9.1f} | {ck.total_checkpoint_time / 5:13.2f} | "
              f"{to_MB(ck.total_precopy_bytes):12.0f} | "
              f"{to_MB(ck.total_coordinated_bytes):10.0f} | "
              f"{(pc.redundant_copies + pc.stale_copies) if pc else 0:9d} | "
              f"{sum(c.fault_count for c in alloc.chunks()):6d}")
        if mode == "dcpc" and ck.threshold is not None:
            print(f"{'':>8}   learned: interval I = {ck.threshold.interval_estimate:.1f} s, "
                  f"T_c = {ck.threshold.copy_time():.1f} s, "
                  f"threshold T_p = {ck.threshold.threshold():.1f} s")
        if mode == "dcpcp" and ck.prediction is not None:
            hot = alloc.chunk("x_positions")
            print(f"{'':>8}   prediction: x_positions expected "
                  f"{ck.prediction.expected_mods(hot):.0f} mods/interval, "
                  f"table accuracy {ck.prediction.accuracy()*100:.0f}%")
            nxt = ck.prediction.machine.predict_next(hot.chunk_id)
            names = {c.chunk_id: c.name for c in alloc.chunks()}
            print(f"{'':>8}   state machine: after x_positions the next write "
                  f"is usually {names.get(nxt, '?')} (Fig. 6)")

    print("\nreading the table: 'none' copies everything in the blocking step; "
          "CPC moves it early but re-copies chunks the app re-writes; DCPC "
          "waits until T_p; DCPCP additionally holds each chunk until its "
          "predicted last write — fewest redundant copies and faults.")


if __name__ == "__main__":
    main()
