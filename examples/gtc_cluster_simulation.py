#!/usr/bin/env python3
"""GTC on the simulated testbed: the paper's §VI methodology end to end.

Builds the 4-node x 12-rank cluster (48 MPI processes, as in the
evaluation), runs the GTC workload model with full NVM-checkpoints
(local DCPCP pre-copy + the remote pre-copy stream to cross-rack
buddies), and compares against the asynchronous no-pre-copy baseline
and the checkpoint-free ideal.

Run:  python examples/gtc_cluster_simulation.py
"""

from repro.apps import GTCModel
from repro.baselines import async_noprecopy_config, precopy_config
from repro.cluster import Cluster, ClusterRunner
from repro.config import ClusterConfig
from repro.units import GB_per_sec, to_GB

ITERATIONS = 6
NODES = 4
RANKS_PER_NODE = 12
NVM_BW = GB_per_sec(1.0)


def run(config, label, with_remote=True, local_checkpoints=True):
    cluster = Cluster(ClusterConfig(nodes=NODES), nvm_write_bandwidth=NVM_BW, seed=7)
    app = GTCModel(small_chunks=24)
    cluster.build(app, config, ranks_per_node=RANKS_PER_NODE, with_remote=with_remote)
    runner = ClusterRunner(cluster, local_checkpoints=local_checkpoints)
    result = runner.run(ITERATIONS)
    print(f"\n=== {label} ===")
    print(f"execution time          : {result.total_time:8.1f} s")
    print(f"local checkpoints       : {result.local_checkpoints} "
          f"(avg blocking {result.local_ckpt_time_avg:.2f} s)")
    print(f"data to local NVM       : {to_GB(result.total_nvm_bytes):8.1f} GB "
          f"({to_GB(result.local_precopy_bytes):.1f} GB via pre-copy)")
    if with_remote:
        print(f"remote rounds           : {result.remote_rounds} "
              f"({to_GB(result.remote_round_bytes):.1f} GB at rounds, "
              f"{to_GB(result.remote_precopy_bytes):.1f} GB streamed)")
        print(f"helper core utilization : {result.helper_utilization*100:8.1f} %")
        print(f"peak ckpt fabric window : "
              f"{result.fabric_ckpt_peak_window_bytes/2**20:8.0f} MB/s")
    return result


def main() -> None:
    print(f"GTC, {NODES * RANKS_PER_NODE} ranks, "
          f"~{GTCModel().checkpoint_mb_per_rank:.0f} MB checkpoint/rank, "
          f"NVM at {NVM_BW / 2**30:.1f} GB/s")

    ideal = run(precopy_config(40, 120), "ideal (no checkpointing)",
                with_remote=False, local_checkpoints=False)
    nop = run(async_noprecopy_config(40, 120), "asynchronous no-pre-copy")
    pre = run(precopy_config(40, 120), "NVM-checkpoints (pre-copy)")

    print("\n=== comparison ===")
    print(f"efficiency  no-pre-copy : {ideal.total_time / nop.total_time:.3f}")
    print(f"efficiency  pre-copy    : {ideal.total_time / pre.total_time:.3f}")
    ovh_nop = (nop.total_time - ideal.total_time) / ideal.total_time * 100
    ovh_pre = (pre.total_time - ideal.total_time) / ideal.total_time * 100
    print(f"checkpoint overhead     : {ovh_pre:.1f}% (pre-copy) vs "
          f"{ovh_nop:.1f}% (no-pre-copy) — "
          f"{(1 - ovh_pre / ovh_nop) * 100:.0f}% less")
    print("\ntimeline (rank r0 + node-0 helper):")
    print(pre.timeline.ascii_art(width=100, actors=["r0", "n0:helper"]))


if __name__ == "__main__":
    main()
