#!/usr/bin/env python3
"""Quickstart: the Table-III API end to end.

A tiny 'simulation' allocates persistent variables through the
NVM-checkpoint interface, computes on them in DRAM, checkpoints to
NVM, crashes, and restarts — with the committed data intact and the
virtual cost of every operation reported.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import NVMCheckpoint
from repro.memory import InMemoryStore
from repro.units import MB, to_MB


def main() -> None:
    # The store object *is* the NVM DIMM: it survives process crashes.
    store = InMemoryStore()

    # -- a process starts and declares its checkpoint state ------------
    app = NVMCheckpoint("rank0", store=store)
    temperature = app.nvalloc("temperature", MB(8))
    pressure = app.nv2dalloc("pressure", 512, 256)  # 2-D convenience
    scratch = app.nvalloc("scratch", MB(1), pflag=False)  # not persisted

    print(f"declared checkpoint state: {to_MB(app.checkpoint_bytes):.0f} MB "
          f"across {len(app.allocator.persistent_chunks())} chunks")

    # -- compute in DRAM ------------------------------------------------
    t_field = np.linspace(250.0, 320.0, MB(8) // 8)
    temperature.write(0, t_field)
    pressure.write(0, np.full(512 * 256, 101_325.0))
    scratch.write(0, np.zeros(MB(1) // 8))

    # -- coordinated local checkpoint (nvchkptall) ----------------------
    stats = app.nvchkptall()
    print(f"checkpoint: {stats.chunks_copied} chunks, "
          f"{to_MB(stats.bytes_copied):.0f} MB in {stats.duration*1000:.1f} ms "
          f"of virtual time (PCM write bandwidth, Table I)")

    # -- keep computing; this work will be lost --------------------------
    temperature.write(0, np.zeros(1000))
    print("overwrote data after the checkpoint (will be rolled back)")

    # -- crash: DRAM and unflushed NVM writes die ------------------------
    app.crash()
    print("process crashed")

    # -- restart from NVM -------------------------------------------------
    app2, report = NVMCheckpoint.restart("rank0", store)
    print(f"restart: {report.chunks_local} chunks, "
          f"{to_MB(report.bytes_local):.0f} MB read back in "
          f"{report.duration*1000:.1f} ms of virtual time")

    recovered = app2.chunk("temperature").view(np.float64)
    assert np.array_equal(recovered, t_field), "committed data must survive"
    assert not app2.allocator.has_chunk("scratch"), "pflag=False is not persisted"
    print(f"temperature[0]={recovered[0]:.1f} K ... "
          f"temperature[-1]={recovered[-1]:.1f} K — intact")

    # -- the runtime keeps working after restart -------------------------
    app2.chunk("pressure").write(0, np.full(100, 99_000.0))
    stats2 = app2.nvchkptall()
    print(f"post-restart checkpoint: {stats2.chunks_copied} dirty chunk(s) "
          f"copied, {stats2.chunks_skipped} clean chunk(s) skipped")
    print("\nsummary:", app2.stats_summary())


if __name__ == "__main__":
    main()
