#!/usr/bin/env python3
"""The payload codec layer: delta + content-addressed dedup end to end.

Walks `docs/ARCHITECTURE.md` §16 in four steps:

1. **exact-mode codecs** — encode/decode real byte buffers through
   `DeltaCodec` (XOR runs against a base, wrong base refused loudly)
   and `DedupCodec` (novel blocks ship bytes, resident blocks ship
   references);
2. **codec checkpoints** — two `codec="auto"` checkpoints of real
   content through the normal engine walk: the first ships everything
   (and seeds the digest index), the second re-dirties one page and
   ships a fraction of its dirty evidence, with every per-chunk choice
   announced as a `codec.decision` trace event;
3. **crash + verified restart** — power-loss the node and restart
   through the block store: every restored block is re-digested
   against the committed slot map before the application sees it;
4. **what-if** — none of this requires re-running an app to price:
   `repro-sweep --replay trace.jsonl --sweep codec=raw,auto` models
   codec yield from any captured trace (see
   examples/replay_whatif_demo.py).

Run:  PYTHONPATH=src python examples/dedup_demo.py
"""

import numpy as np

from repro.alloc import NVAllocator
from repro.config import PrecopyPolicy
from repro.core import LocalCheckpointer, RestartManager, make_standalone_context
from repro.core.codec import DEFAULT_BLOCK, BlockStore, DedupCodec, DeltaCodec
from repro.errors import CodecError
from repro.metrics.trace import BUS, CodecDecisionEvent
from repro.sim import Engine
from repro.units import to_MB


def exact_mode_tour() -> None:
    print("== 1. exact-mode codecs ==")
    rng = np.random.default_rng(11)
    base = rng.integers(0, 255, size=64 * 1024, dtype=np.uint8).tobytes()
    data = bytearray(base)
    data[4096:4160] = rng.integers(0, 255, size=64, dtype=np.uint8).tobytes()

    delta = DeltaCodec().encode_bytes(bytes(data), base=base)
    print(
        f"  delta: {delta.logical_bytes} logical B -> {delta.wire_bytes} wire B "
        f"({delta.changed_bytes} B actually changed)"
    )
    assert DeltaCodec().decode_bytes(delta, base=base) == bytes(data)
    try:
        DeltaCodec().decode_bytes(delta, base=base[::-1])
    except CodecError as e:
        print(f"  delta vs wrong base refused: {e}")

    store = BlockStore()
    first = DedupCodec().encode_bytes(bytes(data), store=store)
    again = DedupCodec().encode_bytes(bytes(data), store=store)
    print(
        f"  dedup: first encode {first.blocks_new} new / {first.blocks_ref} ref "
        f"blocks ({first.wire_bytes} wire B); re-encode {again.blocks_new} new / "
        f"{again.blocks_ref} ref ({again.wire_bytes} wire B)"
    )
    assert DedupCodec().decode_bytes(again, store=store) == bytes(data)


def codec_checkpoints():
    print("\n== 2. auto-codec checkpoints over real content ==")
    decisions: list[CodecDecisionEvent] = []
    sink = BUS.subscribe(decisions.append, kinds=["codec.decision"])
    engine = Engine()
    ctx = make_standalone_context(name="n0", engine=engine)
    alloc = NVAllocator("r0", ctx.nvmm, ctx.dram, phantom=False, clock=lambda: engine.now)
    ck = LocalCheckpointer(ctx, alloc, PrecopyPolicy(mode="none", codec="auto"))
    rng = np.random.default_rng(7)

    a = alloc.nvalloc("a", 256 * 1024)  # incompressible
    a.write(0, rng.integers(0, 255, size=256 * 1024, dtype=np.uint8))
    b = alloc.nvalloc("b", 128 * 1024)  # self-similar: all zero blocks
    b.write(0, np.zeros(128 * 1024, dtype=np.uint8))

    engine.process(ck.checkpoint(blocking=False))
    engine.run()
    print(
        f"  ckpt 1: {to_MB(ck.codec_logical_bytes):.2f} MB dirty -> "
        f"{to_MB(ck.codec_wire_bytes):.2f} MB wire "
        f"(store holds {ck.destination.block_store.unique_blocks} unique blocks)"
    )

    # one re-dirtied page on `a`, `b` rewritten with identical zeros
    a.write(0, rng.integers(0, 255, size=DEFAULT_BLOCK, dtype=np.uint8))
    b.write(0, np.zeros(128 * 1024, dtype=np.uint8))
    engine.process(ck.checkpoint(blocking=False))
    engine.run()
    print(
        f"  ckpt 2: {to_MB(ck.codec_logical_bytes):.2f} MB dirty -> "
        f"{to_MB(ck.codec_wire_bytes):.2f} MB wire cumulative "
        f"({to_MB(ck.codec_saved_bytes):.2f} MB kept off the wire)"
    )
    for ev in decisions:
        print(
            f"    codec.decision {ev.chunk!r}: chose {ev.chosen} "
            f"(raw {ev.raw_bytes} / delta {ev.delta_bytes} / dedup {ev.dedup_bytes} B)"
        )
    BUS.unsubscribe(sink)
    return engine, ctx, ck


def verified_restart(engine, ctx, ck) -> None:
    print("\n== 3. crash + digest-verified restart ==")
    ctx.nvmm.store.crash()
    ctx.nvmm.crash_process("r0")
    report = RestartManager(ctx).restart_process_sync(
        "r0", block_store=ck.destination.block_store
    )
    print(
        f"  restored {report.chunks_local} chunks, verified "
        f"{report.blocks_verified} content blocks against the committed "
        f"digest maps, {report.digest_failures} mismatches"
    )
    assert report.digest_failures == 0


def main() -> None:
    exact_mode_tour()
    verified_restart(*codec_checkpoints())
    print("\n(see `repro-sweep --replay ... --sweep codec=...` and "
          "`python -m repro.tools.bench --dedup-smoke` for the modelled "
          "and CI-sized versions of the same story)")


if __name__ == "__main__":
    main()
