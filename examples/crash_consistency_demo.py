#!/usr/bin/env python3
"""Crash-consistency demo: inject a crash mid-commit, check the NVM,
restart, and prove nothing tore.

Walks the fault-injection harness through its three headline cases:

1. a crash *between* the data flush and the metadata flush of a local
   checkpoint — the window the two-version shadow commit exists for;
2. a crash in the middle of flushing a half-written chunk stage;
3. bit-rot in a committed region, caught by the checksum and repaired
   from the buddy's remote copy.

Run:  PYTHONPATH=src python examples/crash_consistency_demo.py
"""

from repro.faults.harness import CrashConsistencyHarness, matrix_case
from repro.faults.plan import FaultPlan
from repro.metrics import CrashOutcomeCounter


def show(title: str, result) -> None:
    print(f"\n=== {title}")
    print(f"  crashed at      : {result.crash_point}")
    print(f"  checker verdict : "
          f"{'consistent' if result.report and result.report.ok else 'VIOLATIONS'}")
    if result.report is not None:
        print(f"    {result.report.summary()}")
    if result.restart_report is not None:
        rr = result.restart_report
        print(f"  restart         : {rr.chunks_local} chunks local, "
              f"{rr.chunks_remote} remote, corrupted={rr.corrupted_chunks}")
    print(f"  outcome         : {result.outcome}"
          + (f" ({result.detail})" if result.detail else ""))


def main() -> None:
    counter = CrashOutcomeCounter()

    # -- 1. the classic window: data durable, metadata flip not yet ----
    # The in-progress version's bytes are flushed but the per-chunk
    # committed pointer still names the old version.  Restart must
    # come back with the *previous* checkpoint, bit for bit.
    harness = CrashConsistencyHarness(n_steps=4)
    plan = FaultPlan.crash_at("local.commit.before_meta_flush", hit=2)
    result = harness.run(plan)
    show("crash between data flush and metadata flush", result)
    counter.record(result.crash_point, result.outcome)

    # -- 2. torn chunk: power loss halfway through staging one chunk --
    # The chunk's NVM region holds half old bytes, half new.  The
    # commit pointer never flipped, so the checker must still find a
    # clean committed version behind it.
    harness, plan = matrix_case("chunk.stage.mid")
    result = harness.run(plan)
    show("crash mid-chunk with a half-staged write", result)
    counter.record(result.crash_point, result.outcome)

    # -- 3. bit-rot + buddy repair: the remote path earns its keep ----
    # A committed byte rots after commit; the next crash-restart finds
    # the checksum mismatch and silently-but-loudly repairs the chunk
    # over RDMA from the buddy node's committed remote copy.
    harness, plan = matrix_case("restart.fetch_remote")
    result = harness.run(plan)
    show("bit-rot in committed NVM, repaired from the buddy", result)
    counter.record(result.crash_point, result.outcome)

    print("\n=== outcome tally")
    print(counter.table())
    print("\nEvery path ends verified-consistent or loudly reported — "
          "run `make faults` for all 27 crash points.")


if __name__ == "__main__":
    main()
