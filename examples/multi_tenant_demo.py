#!/usr/bin/env python3
"""Multi-tenant checkpoint-as-a-service: NVM QoS on one shared device.

Three tenants sized from the paper's workload models share one PCM
device through `repro.tenancy`:

* **gtc-prod** — guaranteed production (GTC-sized jobs, fixed 24 s
  cadence, 4x bandwidth share): its 30 s interval / 120 s RPO targets
  must hold no matter what the others do;
* **lammps-batch** — bursty best-effort batch (LAMMPS-sized, Poisson
  arrivals with burst trains and heavy-tailed job sizes);
* **cm1-scavenger** — half-share scavenger (CM1-sized) that soaks up
  whatever bandwidth is left over.

`NvmPartition` carves per-tenant capacity quotas; `WeightedFairBus`
splits the device's contended bandwidth (the same CoreContentionModel
curve as the single-tenant bus) by weighted water-filling with
work-conserving borrowing; `AdmissionController` admits / queues /
rejects jobs against the quotas and preempts best-effort work when
the guaranteed tenant's SLO is at risk.

The demo runs the pinned scenario twice to show determinism, prints
the per-tenant QoS scorecard, and then runs a tenant-labelled 2-node
cluster to show end-to-end attribution: every `chunk.copied` and
`commit` trace event names its tenant.

Run:  python examples/multi_tenant_demo.py
"""

from repro.metrics.trace import BUS, CounterSink
from repro.tenancy import run_scenario
from repro.tools.qos import run_attribution_check
from repro.units import to_GB


def main() -> None:
    print("pinned multi-tenant scenario (seed=7, 600 s of arrivals) ...")
    sink = CounterSink()
    BUS.attach(sink)
    try:
        report = run_scenario(seed=7, duration=600.0)
    finally:
        BUS.detach(sink)

    totals = report["totals"]
    print(f"\n  jobs: {totals['jobs_submitted']} submitted, "
          f"{totals['admitted']} admitted, {totals['queued']} queued, "
          f"{totals['rejected']} rejected, "
          f"{totals['preemptions']} preempted")
    print(f"  device moved {to_GB(totals['bytes_moved']):.1f} GB across "
          f"{totals['throttle_spans']} throttle spans\n")

    hdr = (f"  {'tenant':<16} {'class':<11} {'done':>5} {'rej':>4} "
           f"{'interval':>8} {'rpo':>6} {'throttle':>9} {'moved':>9}")
    print(hdr)
    print("  " + "-" * (len(hdr) - 2))
    for name, t in report["tenants"].items():
        klass = "guaranteed" if t["guaranteed"] else "best-effort"
        print(f"  {name:<16} {klass:<11} {t['jobs_completed']:>5} "
              f"{t['jobs_rejected']:>4} {t['interval_attainment']:>8.2f} "
              f"{t['rpo_attainment']:>6.2f} {t['throttle_time_s']:>8.1f}s "
              f"{to_GB(t['bytes_moved']):>7.1f}GB")

    print("\n  tenant.* trace events emitted:")
    for kind in ("tenant.admission", "tenant.preempt",
                 "tenant.throttle", "tenant.slo"):
        print(f"    {kind:<18} {sink.by_kind.get(kind, 0)}")

    guar = report["tenants"]["gtc-prod"]
    assert guar["interval_attainment"] >= 0.95, "guaranteed SLO broken"
    assert guar["throttle_time_s"] == 0.0, "guaranteed tenant throttled"
    print("\n  guaranteed tenant held its SLOs; best-effort absorbed "
          "all throttling")

    print("\ndeterminism: re-running the same (seed, duration) ...")
    again = run_scenario(seed=7, duration=600.0)
    assert again == report, "scenario is not deterministic"
    print("  byte-identical report on the second run")

    print("\nend-to-end attribution (tenant-labelled 2-node cluster) ...")
    attr = run_attribution_check(seed=11)
    print(f"  every chunk.copied/commit labelled: {attr['all_attributed']} "
          f"({attr['events_labelled']} labelled, "
          f"{attr['events_unlabelled']} unlabelled)")
    for name, t in sorted(attr["tenants"].items()):
        print(f"  {name}: ranks={t['ranks']} checkpoints={t['checkpoints']} "
              f"coordinated={t['coordinated_gb']:.3f} GB")


if __name__ == "__main__":
    main()
