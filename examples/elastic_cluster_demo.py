#!/usr/bin/env python3
"""Elastic cluster membership: join, live migration, drain, and
incremental failover.

One 6-node / 2-rack cluster (4 nodes computing, 2 spares with NVM and
fabric but no ranks) runs the grow/shrink-under-load story:

1. **t=35 s** node 2 dies hard — its orphan (node 1) re-pairs onto
   node 0, which now hosts *two* sources (the imbalance);
2. **t=60 s** spare node 4 **joins** the buddy pool — the migration
   planner offloads node 1's copies onto it in bounded batches,
   interleaved with the live pre-copy stream and throttled whenever
   the per-interval checkpoint-latency SLO is at risk; ownership flips
   atomically only after the last batch commits;
3. **t=95 s** the replaced node 2 **drains** and departs (nothing
   checkpoints to it anymore);
4. **t=140 s** the newcomer dies hard — node 1 fails over *back* to
   node 0, and because node 0's copies are still current for every
   chunk that did not re-commit since the cutover, the re-sync sends
   only the delta (compare the full-resync baseline's bytes).

Run:  python examples/elastic_cluster_demo.py
"""

from repro.tools.elastic import (
    DRAIN_AT,
    EARLY_FAIL_AT,
    JOIN_AT,
    LATE_FAIL_AT,
    SLO_HEADROOM,
    run_clean,
    run_elastic,
    run_full_resync_baseline,
    _worst_latency,
)
from repro.units import to_GB


def main() -> None:
    print("calibrating: clean run + full-resync baseline ...")
    _, clean_worst = run_clean()
    b_cluster, _, b_res = run_full_resync_baseline()
    slo = SLO_HEADROOM * max(clean_worst, _worst_latency(b_cluster))

    print("scripted schedule (elastic arm):")
    print(f"  t={EARLY_FAIL_AT:>5.1f}s  node 2  hard failure (creates the imbalance)")
    print(f"  t={JOIN_AT:>5.1f}s  node 4  JOIN  (spare enters the buddy pool)")
    print(f"  t={DRAIN_AT:>5.1f}s  node 2  DRAIN (decommission the replaced node)")
    print(f"  t={LATE_FAIL_AT:>5.1f}s  node 4  hard failure (newcomer dies)")
    print(f"checkpoint-latency SLO: {slo:.3f}s "
          f"({SLO_HEADROOM}x the calibrated worst interval)\n")

    cluster, runner, res = run_elastic(slo)
    ctrl = runner.membership_controller
    guard = runner.slo_guard

    print(f"completed {res.iterations} iterations in {res.total_time:.1f}s")
    print(f"membership: {res.membership_joins} join, {res.membership_drains} "
          f"drain, {res.membership_departs} depart")
    print(f"migrations: {res.migrations_completed} completed "
          f"({res.migration_batches} batches, "
          f"{to_GB(res.migration_bytes):.4f} GB), "
          f"{res.migrations_aborted} aborted, "
          f"{ctrl.moves_failed} failed to start")
    print(f"SLO guard: max interval {guard.max_latency:.3f}s vs SLO {slo:.3f}s "
          f"-> {'HELD' if guard.within_slo else 'VIOLATED'} "
          f"({res.migration_slo_pauses} pauses, "
          f"{res.migration_throttled_batches} throttled batches)")
    print("pairing changes:")
    for node, old, new in runner.directory.migrations:
        print(f"  migration cutover: node {node}: n{old} -> n{new}")
    for node, old, new in runner.directory.repairs:
        print(f"  failover repair:   node {node}: n{old} -> n{new}")

    print(f"\nfailover re-sync bytes:")
    print(f"  elastic (early full + late incremental): "
          f"{to_GB(res.resync_bytes):.4f} GB")
    print(f"  baseline (two full re-syncs):            "
          f"{to_GB(b_res.resync_bytes):.4f} GB")
    saved = 1.0 - res.resync_bytes / b_res.resync_bytes
    print(f"  incremental failover saved {saved:.0%} of the baseline's bytes")

    print("\ntimeline (o=outage, D=degraded, s=resync, m=migration, R=restart):")
    actors = [a for a in res.timeline.actors() if a.startswith("n")]
    print(res.timeline.ascii_art(width=96, actors=actors))


if __name__ == "__main__":
    main()
