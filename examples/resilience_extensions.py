#!/usr/bin/env python3
"""Beyond the paper: checksum scrubbing and XOR-parity redundancy.

Two extensions built on the same substrate:

1. **Scrubbing** — the paper verifies chunk checksums only at restart;
   with PCM's 1e8-cycle endurance, silent corruption should be found
   (and repaired from the buddy) *before* a failure forces a restart.
2. **Erasure coding** — instead of mirroring every rank's checkpoint
   on a buddy, a parity group of K ranks stores one XOR block: 1/K the
   remote space and interconnect volume, at a K x recovery-read tax.

Run:  python examples/resilience_extensions.py
"""

import numpy as np

from repro.alloc import NVAllocator
from repro.config import CheckpointConfig, PrecopyPolicy
from repro.core import (
    LocalCheckpointer,
    RemoteHelper,
    Scrubber,
    XorParityGroup,
    make_standalone_context,
)
from repro.net import Fabric
from repro.sim import Engine
from repro.units import MB, to_MB


def scrubbing_demo() -> None:
    print("=== scrubbing: silent corruption repaired from the buddy ===")
    engine = Engine()
    node0 = make_standalone_context(name="n0", engine=engine)
    node1 = make_standalone_context(name="n1", engine=engine)
    fabric = Fabric(engine, 2)
    alloc = NVAllocator("r0", node0.nvmm, node0.dram)
    ck = LocalCheckpointer(node0, alloc, PrecopyPolicy(mode="none"))
    helper = RemoteHelper(0, node0, fabric, 1, node1, [alloc],
                          CheckpointConfig(remote_precopy=False))

    field = alloc.nvalloc("field", MB(4))
    data = np.sin(np.linspace(0, 20, MB(4) // 8))
    field.write(0, data)

    def checkpoint_and_replicate():
        yield from ck.checkpoint(blocking=False)
        yield from helper.remote_checkpoint()

    proc = engine.process(checkpoint_and_replicate())
    engine.run()
    assert proc.ok
    print(f"checkpointed + replicated {to_MB(field.nbytes):.0f} MB "
          f"(local v{field.committed_version}, buddy committed)")

    # a cosmic ray / worn cell flips bits in the committed local copy
    node0.nvmm.store.write(
        f"r0/field#v{field.committed_version}", 1024,
        np.full(64, 0xFF, dtype=np.uint8),
    )
    node0.nvmm.store.flush()
    print("injected silent corruption into the committed local version")

    scrubber = Scrubber(node0, alloc, fabric=fabric, node_id=0,
                        remote_target=helper.targets["r0"], remote_node=1)
    report = scrubber.scan_sync()
    print(f"scrub sweep: scanned {report.chunks_scanned} chunk(s) "
          f"({to_MB(report.bytes_scanned):.0f} MB) in "
          f"{report.duration*1000:.1f} ms virtual; corrupted={report.corrupted} "
          f"repaired={report.repaired}")
    assert field.verify_checksum()
    restored = field.committed_region().read(0, field.nbytes).view(np.float64)
    assert np.array_equal(restored, data)
    print("committed data verified bit-exact after repair\n")


def erasure_demo() -> None:
    print("=== erasure coding: K ranks, one parity block ===")
    engine = Engine()
    K = 4
    allocs, payloads = [], []
    for i in range(K):
        ctx = make_standalone_context(name=f"m{i}", engine=engine)
        a = NVAllocator(f"rank{i}", ctx.nvmm, ctx.dram)
        chunk = a.nvalloc("state", MB(2))
        payload = np.random.default_rng(i).integers(0, 256, MB(2)).astype(np.uint8)
        chunk.write(0, payload)
        ck = LocalCheckpointer(ctx, a, PrecopyPolicy(mode="none"))
        proc = engine.process(ck.checkpoint(blocking=False))
        engine.run()
        assert proc.ok
        allocs.append(a)
        payloads.append(payload)

    parity_node = make_standalone_context(name="parity", engine=engine)
    group = XorParityGroup(allocs, parity_node, group_id="demo")
    written = group.update_parity()
    group.commit()
    print(f"group of {K} ranks x {to_MB(MB(2)):.0f} MB: parity block "
          f"{to_MB(written):.0f} MB "
          f"(replication would ship {to_MB(K * MB(2)):.0f} MB)")
    print(f"remote space per member: 1/{K} of replication")

    victim = 2
    rebuilt = group.reconstruct(allocs[victim], "state")
    assert np.array_equal(rebuilt, payloads[victim])
    print(f"rank{victim} lost -> reconstructed bit-exact from "
          f"{K - 1} survivors + parity "
          f"(recovery read {to_MB(group.recovery_read_bytes):.0f} MB — the tax)")


if __name__ == "__main__":
    scrubbing_demo()
    erasure_demo()
