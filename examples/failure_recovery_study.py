#!/usr/bin/env python3
"""Failure injection and multilevel recovery, plus the §III model.

Runs LAMMPS-like work under an aggressive failure regime (64% soft /
36% hard, the paper's ASCI-Q split), watches soft failures recover
from node-local NVM and hard failures recover from cross-rack buddies,
and compares the measured cost against the §III analytic model's
prediction.  Finishes with the model's optimal-interval analysis
(a Young/Daly-style extension).

Run:  python examples/failure_recovery_study.py
"""

from repro.apps import SyntheticModel
from repro.baselines import precopy_config
from repro.cluster import Cluster, ClusterRunner
from repro.config import ClusterConfig, FailureConfig
from repro.models import ModelParams, MultilevelModel, optimal_local_interval
from repro.units import GB_per_sec, MB

ITERATIONS = 10
NODES = 4
RANKS = 4
LOCAL_I = 20.0
REMOTE_I = 60.0
CKPT_MB = 100.0


def main() -> None:
    failure_config = FailureConfig.from_rates(
        lambda_total=1 / 400.0,  # per-node rate; ~1/100s cluster-wide
        soft_fraction=0.64,      # the ASCI-Q split the paper cites
        seed=21,
    )
    print(f"failure regime: MTBF_local={failure_config.mtbf_local:.0f}s/node, "
          f"MTBF_remote={failure_config.mtbf_remote:.0f}s/node "
          f"(soft fraction {failure_config.soft_fraction:.2f})")

    cluster = Cluster(ClusterConfig(nodes=NODES),
                      nvm_write_bandwidth=GB_per_sec(1.0), seed=21)
    app = SyntheticModel(checkpoint_mb_per_rank=CKPT_MB, chunk_mb=25,
                         iteration_compute_time=LOCAL_I, comm_mb_per_iteration=50)
    cluster.build(app, precopy_config(LOCAL_I, REMOTE_I), ranks_per_node=RANKS)
    runner = ClusterRunner(cluster, failure_config=failure_config)
    result = runner.run(ITERATIONS)

    print(f"\ncompleted {result.iterations} iterations in {result.total_time:.1f}s "
          f"(ideal {result.ideal_time:.0f}s)")
    print(f"failures: {result.soft_failures} soft (local NVM restart), "
          f"{result.hard_failures} hard (buddy fetch + node replacement)")
    print(f"recovery time {result.recovery_time:.1f}s; "
          f"{result.iterations_recomputed} iterations recomputed")

    # -- §III model with the same parameters ----------------------------
    params = ModelParams(
        compute_time=ITERATIONS * LOCAL_I,
        checkpoint_bytes=MB(CKPT_MB),
        nvm_bw_per_core=MB(CKPT_MB) / max(1e-9, result.local_ckpt_time_avg),
        remote_bw=MB(400),
        local_interval=LOCAL_I,
        remote_interval=REMOTE_I,
        mtbf_local=failure_config.mtbf_local / NODES,
        mtbf_remote=failure_config.mtbf_remote / NODES,
    )
    breakdown = MultilevelModel(params).solve()
    print("\n§III model prediction for this configuration:")
    print(f"  T_compute        = {breakdown.compute:8.1f} s")
    print(f"  T_lcl            = {breakdown.local_checkpoint:8.1f} s")
    print(f"  restart total    = {breakdown.restart_total:8.1f} s")
    print(f"  recompute total  = {breakdown.recompute_total:8.1f} s")
    print(f"  T_total          = {breakdown.total:8.1f} s "
          f"(simulated: {result.total_time:.1f} s)")
    print("  (the model follows the paper's §III simplifications: no node-"
          "replacement delay, no failures during recovery, failures on "
          "average mid-interval — at high failure rates the simulation's "
          "cascades push the measured total above the model's expectation)")

    # -- what interval *should* this system use? -------------------------
    best_interval, best_total = optimal_local_interval(params, lo=2.0, hi=300.0)
    print(f"\noptimal local checkpoint interval for this failure regime: "
          f"{best_interval:.0f} s (model T_total {best_total:.0f} s; "
          f"we ran with {LOCAL_I:.0f} s)")


if __name__ == "__main__":
    main()
