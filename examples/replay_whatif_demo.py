#!/usr/bin/env python3
"""Trace-driven replay: capture one live run, then answer "what if?"
without re-simulating.

Walks the replay engine end to end:

1. **capture** — run one LAMMPS cluster cell with a ring-buffer sink
   on the trace bus; the event stream plus the resolved config is the
   complete record of the run;
2. **faithful replay** — re-derive the byte accounting verbatim from
   the events and diff it against the live `RunResult`; every metric
   must match integer-for-integer (this is the differential oracle
   the test suite runs across all policies and granularities);
3. **what-if replay** — reconstruct the dirty-page activity and re-run
   the scheduling decisions under every policy mode and a faster NVM,
   pricing alternatives in milliseconds instead of re-simulating;
4. **replay sweep** — the same grid through `run_replay_sweep`, i.e.
   what `repro-sweep --replay trace.jsonl` does from the CLI.

Run:  PYTHONPATH=src python examples/replay_whatif_demo.py
"""

import io

from repro.replay import capture_cell, compare_to_run
from repro.tools.sweep import run_replay_sweep
from repro.units import to_GB

CELL = {
    "app": "lammps",
    "nodes": 2,
    "ranks_per_node": 2,
    "iterations": 3,
    "local_interval": 20.0,
    "remote_interval": 60.0,
    "mode": "dcpcp",
    "copy_granularity": "page",
}


def main() -> None:
    # -- 1. capture one live cell --------------------------------------
    cap = capture_cell(CELL)
    print(f"captured {len(cap.events)} trace events from one live run")
    print(f"  live coordinated : {to_GB(cap.result.coordinated_bytes):.3f} GB")
    print(f"  live pre-copied  : {to_GB(cap.result.local_precopy_bytes):.3f} GB")

    # -- 2. faithful replay: the differential oracle -------------------
    engine = cap.engine()
    report = compare_to_run(engine.faithful(), cap.result)
    print(f"\nfaithful replay: {report.describe()}")
    assert report.matches

    # -- 3. what-if: other policies, faster NVM ------------------------
    print("\nwhat-if grid (same trace, no simulation):")
    print(f"  {'mode':<6} {'nvm GB/s':>8} {'coord GB':>9} "
          f"{'precopy GB':>11} {'blocking s':>11}")
    for mode in ("none", "cpc", "dcpc", "dcpcp"):
        for gbps in (2.0, 4.0):
            w = engine.whatif(mode, nvm_gbps=gbps)
            print(f"  {mode:<6} {gbps:>8.1f} {to_GB(w.bytes_copied):>9.3f} "
                  f"{to_GB(w.precopy_bytes):>11.3f} {w.blocking_s:>11.2f}")

    # -- 4. the CLI path: sweep a serialized trace ---------------------
    buf = io.StringIO()
    cap.write_jsonl(buf)
    buf.seek(0)
    rows = run_replay_sweep(
        buf, [("mode", ["none", "dcpcp"]), ("nvm-gbps", ["2.0"])]
    )
    faithful = [r for r in rows if r["replay.faithful"]]
    print(f"\nsweep --replay produced {len(rows)} rows; "
          f"{len(faithful)} took the faithful (byte-exact) path")


if __name__ == "__main__":
    main()
