#!/usr/bin/env python3
"""Resilient remote checkpointing: link flaps, buddy failover,
degraded mode and background re-sync.

A scripted failure schedule drives a 4-node / 2-rack cluster through
the scenarios the resilience layer exists for:

1. a **transient link flap** on node 1 in the middle of an active
   stream window — in-flight remote transfers tear down, the retrying
   transport backs off and re-delivers once the link heals;
2. a **hard buddy failure**: node 1 dies, node 0 (whose remote copies
   lived there) drops to *degraded* local-only checkpointing with an
   interval re-solved from the §III model, re-pairs cross-rack to
   node 3, re-syncs its committed chunks in the background, and
   restores two-level protection.

The timeline at the end shows the new glyphs: ``o`` (link outage),
``D`` (degraded-mode span), ``s`` (re-sync traffic).

Run:  python examples/degraded_mode_demo.py
"""

from repro.apps import SyntheticModel
from repro.baselines import precopy_config
from repro.cluster import Cluster, ClusterRunner, FailureEvent, ScriptedInjector
from repro.config import ClusterConfig
from repro.metrics import timeline as tl
from repro.units import GB_per_sec

ITERATIONS = 10
LOCAL_I = 10.0
REMOTE_I = 30.0


def main() -> None:
    cluster = Cluster(ClusterConfig(nodes=4, racks=2),
                      nvm_write_bandwidth=GB_per_sec(2.0), seed=5)
    app = SyntheticModel(checkpoint_mb_per_rank=20, chunk_mb=5,
                         iteration_compute_time=LOCAL_I,
                         comm_mb_per_iteration=5)
    cluster.build(app, precopy_config(LOCAL_I, REMOTE_I), ranks_per_node=2)

    events = [
        FailureEvent(time=52.0, node=1, kind="transient", duration=6.0),
        FailureEvent(time=75.0, node=1, kind="hard"),
    ]
    print("scripted schedule:")
    for ev in events:
        extra = f" (heals after {ev.duration:.0f}s)" if ev.is_transient else ""
        print(f"  t={ev.time:>5.1f}s  node {ev.node}  {ev.kind}{extra}")

    runner = ClusterRunner(cluster, injector=ScriptedInjector(events))
    result = runner.run(ITERATIONS)

    print(f"\ncompleted {result.iterations} iterations in "
          f"{result.total_time:.1f}s (ideal {result.ideal_time:.0f}s)")
    print(f"failures: {result.transient_failures} transient, "
          f"{result.hard_failures} hard; "
          f"{result.iterations_recomputed} iterations recomputed")

    r = result.to_dict()["resilience"]
    print("\nresilience layer:")
    print(f"  transfer retries        {r['transfer_retries']}")
    print(f"  transfers abandoned     {r['transfers_abandoned']}")
    print(f"  heartbeats sent         {r['heartbeats']}")
    print(f"  buddy-down detections   {r['buddy_down_detections']}")
    print(f"  buddy re-pairings       {r['buddy_repairs']}")
    for orphan, old, new in runner.directory.repairs:
        print(f"    node {orphan} (rack {cluster.topology.rack_of(orphan)}): "
              f"buddy {old} -> {new} "
              f"(rack {cluster.topology.rack_of(new)}, still cross-rack)")
    print(f"  re-syncs completed      {r['resyncs_completed']} "
          f"({r['resync_gb'] * 1024:.0f} MB re-sent)")
    print(f"  degraded-mode entries   {r['degraded_entries']} "
          f"({r['degraded_time_s']:.1f}s local-only total)")

    helper = cluster.nodes[0].helper
    committed = sum(len(t.committed_chunks()) for t in helper.targets.values())
    print(f"\nnode 0 now pairs with node {helper.buddy_id}; "
          f"{committed} chunks committed on the new buddy")

    print("\ntimeline (o=outage, D=degraded, s=resync, R=restart):")
    actors = [a for a in result.timeline.actors() if a.startswith("n")]
    print(result.timeline.ascii_art(width=96, actors=actors))
    legend = {tl.OUTAGE: "outage", tl.DEGRADED: "degraded", tl.RESYNC: "resync"}
    for kind, label in legend.items():
        total = result.timeline.total(kind)
        if total:
            print(f"  {label:>9}: {total:.1f}s total")


if __name__ == "__main__":
    main()
